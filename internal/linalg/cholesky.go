package linalg

import (
	"errors"
	"math"

	"hetsched/internal/rng"
)

// Block kernels for the tiled Cholesky factorization A = L·Lᵀ (lower
// variant), the paper's suggested extension to kernels with
// dependencies. The four kernels are the classic POTRF / TRSM / SYRK /
// GEMM tile operations.

// ErrNotPositiveDefinite is returned by CholBlock when a pivot is not
// strictly positive.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// CholBlock factors the tile in place: a becomes its lower Cholesky
// factor (the strictly upper triangle is zeroed). This is the POTRF
// kernel.
func CholBlock(a *Block) error {
	l := a.L
	for j := 0; j < l; j++ {
		sum := a.At(j, j)
		for k := 0; k < j; k++ {
			sum -= a.At(j, k) * a.At(j, k)
		}
		if sum <= 0 {
			return ErrNotPositiveDefinite
		}
		d := math.Sqrt(sum)
		a.Set(j, j, d)
		for i := j + 1; i < l; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
		for i := 0; i < j; i++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// TrsmBlock solves X·Lᵀ = A for X and stores X in a, where lkk is the
// lower-triangular Cholesky factor of the diagonal tile. This is the
// TRSM kernel of the tiled factorization: A(i,k) := A(i,k)·L(k,k)^(−T).
func TrsmBlock(a, lkk *Block) {
	l := a.L
	if lkk.L != l {
		panic("linalg: block size mismatch")
	}
	// Row r of X solves X[r,:]·Lᵀ = A[r,:], i.e. forward substitution
	// against L column by column.
	for r := 0; r < l; r++ {
		for c := 0; c < l; c++ {
			sum := a.At(r, c)
			for k := 0; k < c; k++ {
				sum -= a.At(r, k) * lkk.At(c, k)
			}
			a.Set(r, c, sum/lkk.At(c, c))
		}
	}
}

// SyrkBlock computes C := C − A·Aᵀ (symmetric rank-l update of a
// diagonal tile).
func SyrkBlock(c, a *Block) {
	l := c.L
	if a.L != l {
		panic("linalg: block size mismatch")
	}
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			sum := c.At(i, j)
			for k := 0; k < l; k++ {
				sum -= a.At(i, k) * a.At(j, k)
			}
			c.Set(i, j, sum)
		}
	}
}

// GemmTransBlock computes C := C − A·Bᵀ (off-diagonal trailing
// update).
func GemmTransBlock(c, a, b *Block) {
	l := c.L
	if a.L != l || b.L != l {
		panic("linalg: block size mismatch")
	}
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			sum := c.At(i, j)
			for k := 0; k < l; k++ {
				sum -= a.At(i, k) * b.At(j, k)
			}
			c.Set(i, j, sum)
		}
	}
}

// RandomSPD fills m with a random symmetric positive-definite matrix:
// A = M·Mᵀ + dim·I for a random M, which is SPD with a comfortable
// margin.
func RandomSPD(m *BlockedMatrix, r *rng.PCG) {
	n, l := m.N, m.L
	dim := n * l
	raw := make([][]float64, dim)
	for i := range raw {
		raw[i] = make([]float64, dim)
		for j := range raw[i] {
			raw[i][j] = r.UniformRange(-1, 1)
		}
	}
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			sum := 0.0
			for k := 0; k < dim; k++ {
				sum += raw[i][k] * raw[j][k]
			}
			if i == j {
				sum += float64(dim)
			}
			m.Block(i/l, j/l).Set(i%l, j%l, sum)
		}
	}
}

// TiledCholesky factors a blocked SPD matrix in place into its lower
// Cholesky factor using the right-looking tiled algorithm (the serial
// reference for the DAG scheduler in package cholesky). Only the lower
// block triangle is referenced and produced; upper tiles are zeroed.
func TiledCholesky(m *BlockedMatrix) error {
	n := m.N
	for k := 0; k < n; k++ {
		if err := CholBlock(m.Block(k, k)); err != nil {
			return err
		}
		for i := k + 1; i < n; i++ {
			TrsmBlock(m.Block(i, k), m.Block(k, k))
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j <= i; j++ {
				if i == j {
					SyrkBlock(m.Block(i, i), m.Block(i, k))
				} else {
					GemmTransBlock(m.Block(i, j), m.Block(i, k), m.Block(j, k))
				}
			}
		}
	}
	// Zero the upper block triangle for a clean L.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			blk := m.Block(i, j)
			for idx := range blk.Data {
				blk.Data[idx] = 0
			}
		}
	}
	return nil
}

// CholeskyResidual returns max |A − L·Lᵀ| element-wise, used to verify
// a factorization against the original matrix.
func CholeskyResidual(a, lFactor *BlockedMatrix) float64 {
	n, l := a.N, a.L
	dim := n * l
	worst := 0.0
	get := func(m *BlockedMatrix, i, j int) float64 {
		return m.Block(i/l, j/l).At(i%l, j%l)
	}
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			sum := 0.0
			for k := 0; k <= minInt(i, j); k++ {
				sum += get(lFactor, i, k) * get(lFactor, j, k)
			}
			if d := math.Abs(get(a, i, j) - sum); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
