// Package linalg provides the blocked linear-algebra substrate for the
// real execution runtime (package exec): l-element vector blocks,
// l×l matrix blocks, and the two elementary kernels of the paper —
// the block outer-product task M(i,j) = a_i·b_jᵀ and the block GEMM
// update task C(i,j) += A(i,k)·B(k,j).
//
// Everything is plain float64 with row-major dense blocks; the point
// is functional fidelity (the schedulers drive a real computation and
// the result is verified against references), not peak FLOPS.
package linalg

import (
	"fmt"
	"math"

	"hetsched/internal/rng"
)

// Block is a dense row-major l×l block.
type Block struct {
	L    int
	Data []float64
}

// NewBlock returns a zero l×l block.
func NewBlock(l int) *Block {
	if l <= 0 {
		panic("linalg: non-positive block size")
	}
	return &Block{L: l, Data: make([]float64, l*l)}
}

// At returns element (r, c).
func (b *Block) At(r, c int) float64 { return b.Data[r*b.L+c] }

// Set assigns element (r, c).
func (b *Block) Set(r, c int, v float64) { b.Data[r*b.L+c] = v }

// Fill fills the block with pseudo-random values in [-1, 1).
func (b *Block) Fill(r *rng.PCG) {
	for i := range b.Data {
		b.Data[i] = r.UniformRange(-1, 1)
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between two blocks of equal size.
func (b *Block) MaxAbsDiff(o *Block) float64 {
	if b.L != o.L {
		panic("linalg: block size mismatch")
	}
	worst := 0.0
	for i := range b.Data {
		d := math.Abs(b.Data[i] - o.Data[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// OuterUpdate computes m = a·bᵀ for two l-element vector blocks. m is
// overwritten (outer-product tasks write each result block exactly
// once).
func OuterUpdate(a, b []float64, m *Block) {
	l := m.L
	if len(a) != l || len(b) != l {
		panic("linalg: vector block size mismatch")
	}
	for i := 0; i < l; i++ {
		ai := a[i]
		row := m.Data[i*l : (i+1)*l]
		for j := 0; j < l; j++ {
			row[j] = ai * b[j]
		}
	}
}

// GemmUpdate computes c += a·b for l×l blocks.
func GemmUpdate(c, a, b *Block) {
	l := c.L
	if a.L != l || b.L != l {
		panic("linalg: block size mismatch")
	}
	for i := 0; i < l; i++ {
		crow := c.Data[i*l : (i+1)*l]
		arow := a.Data[i*l : (i+1)*l]
		for k := 0; k < l; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*l : (k+1)*l]
			for j := 0; j < l; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// BlockedVector is a vector of n blocks of size l.
type BlockedVector struct {
	N, L   int
	Blocks [][]float64
}

// NewBlockedVector returns a zero blocked vector.
func NewBlockedVector(n, l int) *BlockedVector {
	if n <= 0 || l <= 0 {
		panic("linalg: invalid blocked vector shape")
	}
	v := &BlockedVector{N: n, L: l, Blocks: make([][]float64, n)}
	backing := make([]float64, n*l)
	for i := range v.Blocks {
		v.Blocks[i] = backing[i*l : (i+1)*l]
	}
	return v
}

// Fill fills every block with pseudo-random values in [-1, 1).
func (v *BlockedVector) Fill(r *rng.PCG) {
	for _, blk := range v.Blocks {
		for i := range blk {
			blk[i] = r.UniformRange(-1, 1)
		}
	}
}

// BlockedMatrix is an n×n grid of l×l blocks.
type BlockedMatrix struct {
	N, L   int
	Blocks []*Block // row-major block grid
}

// NewBlockedMatrix returns a zero blocked matrix.
func NewBlockedMatrix(n, l int) *BlockedMatrix {
	if n <= 0 || l <= 0 {
		panic("linalg: invalid blocked matrix shape")
	}
	m := &BlockedMatrix{N: n, L: l, Blocks: make([]*Block, n*n)}
	for i := range m.Blocks {
		m.Blocks[i] = NewBlock(l)
	}
	return m
}

// Block returns block (i, j).
func (m *BlockedMatrix) Block(i, j int) *Block {
	if i < 0 || i >= m.N || j < 0 || j >= m.N {
		panic(fmt.Sprintf("linalg: block (%d,%d) out of %d×%d grid", i, j, m.N, m.N))
	}
	return m.Blocks[i*m.N+j]
}

// Fill fills every block with pseudo-random values in [-1, 1).
func (m *BlockedMatrix) Fill(r *rng.PCG) {
	for _, b := range m.Blocks {
		b.Fill(r)
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between two blocked matrices of identical shape.
func (m *BlockedMatrix) MaxAbsDiff(o *BlockedMatrix) float64 {
	if m.N != o.N || m.L != o.L {
		panic("linalg: blocked matrix shape mismatch")
	}
	worst := 0.0
	for i, b := range m.Blocks {
		if d := b.MaxAbsDiff(o.Blocks[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// ReferenceOuter computes the full outer product M = a·bᵀ serially.
func ReferenceOuter(a, b *BlockedVector) *BlockedMatrix {
	if a.N != b.N || a.L != b.L {
		panic("linalg: vector shape mismatch")
	}
	m := NewBlockedMatrix(a.N, a.L)
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			OuterUpdate(a.Blocks[i], b.Blocks[j], m.Block(i, j))
		}
	}
	return m
}

// ReferenceGemm computes the full product C = A·B serially.
func ReferenceGemm(a, b *BlockedMatrix) *BlockedMatrix {
	if a.N != b.N || a.L != b.L {
		panic("linalg: matrix shape mismatch")
	}
	c := NewBlockedMatrix(a.N, a.L)
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			for k := 0; k < a.N; k++ {
				GemmUpdate(c.Block(i, j), a.Block(i, k), b.Block(k, j))
			}
		}
	}
	return c
}
