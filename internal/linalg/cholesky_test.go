package linalg

import (
	"math"
	"testing"

	"hetsched/internal/rng"
)

// randomSPDBlock returns a well-conditioned SPD block.
func randomSPDBlock(l int, r *rng.PCG) *Block {
	m := NewBlock(l)
	m.Fill(r)
	spd := NewBlock(l)
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			sum := 0.0
			for k := 0; k < l; k++ {
				sum += m.At(i, k) * m.At(j, k)
			}
			if i == j {
				sum += float64(l)
			}
			spd.Set(i, j, sum)
		}
	}
	return spd
}

func TestCholBlock(t *testing.T) {
	const l = 6
	r := rng.New(1)
	a := randomSPDBlock(l, r)
	orig := NewBlock(l)
	copy(orig.Data, a.Data)

	if err := CholBlock(a); err != nil {
		t.Fatal(err)
	}
	// L lower triangular with positive diagonal, upper zeroed.
	for i := 0; i < l; i++ {
		if a.At(i, i) <= 0 {
			t.Fatalf("non-positive diagonal L[%d][%d] = %g", i, i, a.At(i, i))
		}
		for j := i + 1; j < l; j++ {
			if a.At(i, j) != 0 {
				t.Fatalf("upper triangle not zeroed at (%d,%d)", i, j)
			}
		}
	}
	// L·Lᵀ = original.
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			sum := 0.0
			for k := 0; k <= i && k <= j; k++ {
				sum += a.At(i, k) * a.At(j, k)
			}
			if math.Abs(sum-orig.At(i, j)) > 1e-10 {
				t.Fatalf("L·Lᵀ(%d,%d) = %g, want %g", i, j, sum, orig.At(i, j))
			}
		}
	}
}

func TestCholBlockRejectsIndefinite(t *testing.T) {
	a := NewBlock(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if err := CholBlock(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestTrsmBlock(t *testing.T) {
	const l = 5
	r := rng.New(2)
	lkk := randomSPDBlock(l, r)
	if err := CholBlock(lkk); err != nil {
		t.Fatal(err)
	}
	a := NewBlock(l)
	a.Fill(r)
	orig := NewBlock(l)
	copy(orig.Data, a.Data)

	TrsmBlock(a, lkk)
	// Check X·Lᵀ = original.
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			sum := 0.0
			for k := 0; k < l; k++ {
				sum += a.At(i, k) * lkk.At(j, k) // (X·Lᵀ)(i,j) = Σ X(i,k)·L(j,k)
			}
			if math.Abs(sum-orig.At(i, j)) > 1e-9 {
				t.Fatalf("X·Lᵀ(%d,%d) = %g, want %g", i, j, sum, orig.At(i, j))
			}
		}
	}
}

func TestSyrkAndGemmTrans(t *testing.T) {
	const l = 4
	r := rng.New(3)
	a, b := NewBlock(l), NewBlock(l)
	a.Fill(r)
	b.Fill(r)
	c1, c2 := NewBlock(l), NewBlock(l)
	c1.Fill(r)
	copy(c2.Data, c1.Data)

	// GemmTransBlock(c, a, a) must equal SyrkBlock(c, a).
	SyrkBlock(c1, a)
	GemmTransBlock(c2, a, a)
	if d := c1.MaxAbsDiff(c2); d > 1e-12 {
		t.Fatalf("SYRK vs GEMM(A,Aᵀ) differ by %g", d)
	}

	// GemmTrans subtracts A·Bᵀ.
	c3 := NewBlock(l)
	GemmTransBlock(c3, a, b)
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			want := 0.0
			for k := 0; k < l; k++ {
				want -= a.At(i, k) * b.At(j, k)
			}
			if math.Abs(c3.At(i, j)-want) > 1e-12 {
				t.Fatalf("GemmTrans(%d,%d) = %g, want %g", i, j, c3.At(i, j), want)
			}
		}
	}
}

func TestTiledCholeskyMatchesResidual(t *testing.T) {
	const n, l = 4, 5
	r := rng.New(4)
	a := NewBlockedMatrix(n, l)
	RandomSPD(a, r)
	work := NewBlockedMatrix(n, l)
	for i, blk := range a.Blocks {
		copy(work.Blocks[i].Data, blk.Data)
	}
	if err := TiledCholesky(work); err != nil {
		t.Fatal(err)
	}
	if res := CholeskyResidual(a, work); res > 1e-9 {
		t.Fatalf("|A − L·Lᵀ| = %g", res)
	}
	// Upper block triangle must be zero.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, v := range work.Block(i, j).Data {
				if v != 0 {
					t.Fatalf("upper block (%d,%d) not zeroed", i, j)
				}
			}
		}
	}
}

func TestRandomSPDIsSymmetric(t *testing.T) {
	const n, l = 3, 4
	r := rng.New(5)
	a := NewBlockedMatrix(n, l)
	RandomSPD(a, r)
	dim := n * l
	get := func(i, j int) float64 { return a.Block(i/l, j/l).At(i%l, j%l) }
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if get(i, j) != get(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
		if get(i, i) <= 0 {
			t.Fatalf("non-positive diagonal at %d", i)
		}
	}
}
