package linalg

import (
	"errors"
	"math"

	"hetsched/internal/rng"
)

// Block kernels for the tiled LU factorization A = L·U without
// pivoting (valid for diagonally dominant matrices), the second
// dependency-rich kernel of the paper's future-work direction. The
// four kernels are the classic GETRF / TRSM-L / TRSM-U / GEMM tile
// operations.

// ErrSingularPivot is returned by GetrfBlock when a pivot is too small
// for the unpivoted factorization to proceed.
var ErrSingularPivot = errors.New("linalg: singular pivot in unpivoted LU")

// GetrfBlock factors the tile in place into L\U (unit lower triangle
// implicit, upper triangle is U) without pivoting.
func GetrfBlock(a *Block) error {
	l := a.L
	for k := 0; k < l; k++ {
		piv := a.At(k, k)
		if math.Abs(piv) < 1e-12 {
			return ErrSingularPivot
		}
		for i := k + 1; i < l; i++ {
			lik := a.At(i, k) / piv
			a.Set(i, k, lik)
			for j := k + 1; j < l; j++ {
				a.Set(i, j, a.At(i, j)-lik*a.At(k, j))
			}
		}
	}
	return nil
}

// TrsmLowerUnitBlock solves L·X = A for X and stores X in a, where
// lkk holds a unit-lower-triangular factor in its strictly lower
// triangle (the L part of a GETRF'd tile). This is the TRSM-L kernel:
// U(k,j) := L(k,k)⁻¹·A(k,j).
func TrsmLowerUnitBlock(a, lkk *Block) {
	l := a.L
	if lkk.L != l {
		panic("linalg: block size mismatch")
	}
	// Forward substitution, column by column of A.
	for c := 0; c < l; c++ {
		for r := 0; r < l; r++ {
			sum := a.At(r, c)
			for k := 0; k < r; k++ {
				sum -= lkk.At(r, k) * a.At(k, c)
			}
			a.Set(r, c, sum) // unit diagonal: no division
		}
	}
}

// TrsmUpperBlock solves X·U = A for X and stores X in a, where ukk
// holds an upper-triangular factor in its upper triangle (the U part
// of a GETRF'd tile). This is the TRSM-U kernel:
// L(i,k) := A(i,k)·U(k,k)⁻¹.
func TrsmUpperBlock(a, ukk *Block) {
	l := a.L
	if ukk.L != l {
		panic("linalg: block size mismatch")
	}
	// Forward substitution along columns of X (X·U = A ⇒ for column c:
	// X[:,c] = (A[:,c] − Σ_{k<c} X[:,k]·U(k,c)) / U(c,c)).
	for c := 0; c < l; c++ {
		d := ukk.At(c, c)
		for r := 0; r < l; r++ {
			sum := a.At(r, c)
			for k := 0; k < c; k++ {
				sum -= a.At(r, k) * ukk.At(k, c)
			}
			a.Set(r, c, sum/d)
		}
	}
}

// GemmSubBlock computes C := C − A·B (trailing update of the LU
// factorization).
func GemmSubBlock(c, a, b *Block) {
	l := c.L
	if a.L != l || b.L != l {
		panic("linalg: block size mismatch")
	}
	for i := 0; i < l; i++ {
		crow := c.Data[i*l : (i+1)*l]
		arow := a.Data[i*l : (i+1)*l]
		for k := 0; k < l; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Data[k*l : (k+1)*l]
			for j := 0; j < l; j++ {
				crow[j] -= aik * brow[j]
			}
		}
	}
}

// RandomDominant fills m with a random strictly diagonally dominant
// matrix (safe for unpivoted LU).
func RandomDominant(m *BlockedMatrix, r *rng.PCG) {
	n, l := m.N, m.L
	dim := n * l
	for i := 0; i < dim; i++ {
		rowSum := 0.0
		for j := 0; j < dim; j++ {
			if i == j {
				continue
			}
			v := r.UniformRange(-1, 1)
			m.Block(i/l, j/l).Set(i%l, j%l, v)
			rowSum += math.Abs(v)
		}
		m.Block(i/l, i/l).Set(i%l, i%l, rowSum+1+r.Float64())
	}
}

// TiledLU factors a blocked matrix in place into L\U (tile-wise
// packed) using the right-looking tiled algorithm — the serial
// reference for the DAG scheduler in package lu.
func TiledLU(m *BlockedMatrix) error {
	n := m.N
	for k := 0; k < n; k++ {
		if err := GetrfBlock(m.Block(k, k)); err != nil {
			return err
		}
		for j := k + 1; j < n; j++ {
			TrsmLowerUnitBlock(m.Block(k, j), m.Block(k, k))
		}
		for i := k + 1; i < n; i++ {
			TrsmUpperBlock(m.Block(i, k), m.Block(k, k))
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				GemmSubBlock(m.Block(i, j), m.Block(i, k), m.Block(k, j))
			}
		}
	}
	return nil
}

// LUResidual returns max |A − L·U| element-wise, where factored holds
// the packed L\U factors of a.
func LUResidual(a, factored *BlockedMatrix) float64 {
	n, l := a.N, a.L
	dim := n * l
	get := func(m *BlockedMatrix, i, j int) float64 {
		return m.Block(i/l, j/l).At(i%l, j%l)
	}
	lOf := func(i, k int) float64 {
		switch {
		case i == k:
			return 1
		case i > k:
			return get(factored, i, k)
		default:
			return 0
		}
	}
	uOf := func(k, j int) float64 {
		if k <= j {
			return get(factored, k, j)
		}
		return 0
	}
	worst := 0.0
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			sum := 0.0
			for k := 0; k <= minInt(i, j); k++ {
				sum += lOf(i, k) * uOf(k, j)
			}
			if d := math.Abs(get(a, i, j) - sum); d > worst {
				worst = d
			}
		}
	}
	return worst
}
