package speeds

import (
	"math"
	"testing"
	"testing/quick"

	"hetsched/internal/rng"
)

func TestFixed(t *testing.T) {
	m := NewFixed([]float64{10, 20, 30})
	if m.P() != 3 {
		t.Fatalf("P = %d", m.P())
	}
	if m.Speed(1) != 20 {
		t.Fatalf("Speed(1) = %g", m.Speed(1))
	}
	m.OnTaskDone(1)
	if m.Speed(1) != 20 {
		t.Fatal("Fixed speed changed after OnTaskDone")
	}
	init := m.Initial()
	init[0] = 999
	if m.Speed(0) == 999 {
		t.Fatal("Initial() aliases internal state")
	}
}

func TestFixedValidates(t *testing.T) {
	for name, s := range map[string][]float64{
		"empty":    {},
		"zero":     {10, 0, 20},
		"negative": {10, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewFixed(%s) did not panic", name)
				}
			}()
			NewFixed(s)
		}()
	}
}

func TestUniformRangeBounds(t *testing.T) {
	r := rng.New(1)
	s := UniformRange(1000, 10, 100, r)
	if len(s) != 1000 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if v < 10 || v >= 100 {
			t.Fatalf("speed %g out of [10,100)", v)
		}
	}
}

func TestHeterogeneity(t *testing.T) {
	r := rng.New(2)
	s := Heterogeneity(50, 0, r)
	for _, v := range s {
		if v != 100 {
			t.Fatalf("h=0 produced speed %g, want 100", v)
		}
	}
	s = Heterogeneity(1000, 40, r)
	for _, v := range s {
		if v < 60 || v >= 140 {
			t.Fatalf("h=40 produced speed %g out of [60,140)", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Heterogeneity(·, 100) did not panic")
		}
	}()
	Heterogeneity(10, 100, r)
}

func TestFromSet(t *testing.T) {
	r := rng.New(3)
	classes := []float64{80, 100, 150}
	s := FromSet(500, classes, r)
	seen := map[float64]int{}
	for _, v := range s {
		valid := false
		for _, c := range classes {
			if v == c {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("speed %g not in class set", v)
		}
		seen[v]++
	}
	for _, c := range classes {
		if seen[c] == 0 {
			t.Fatalf("class %g never drawn in 500 samples", c)
		}
	}
}

func TestRelative(t *testing.T) {
	rs := Relative([]float64{10, 30, 60})
	sum := 0.0
	for _, v := range rs {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("relative speeds sum to %g", sum)
	}
	if math.Abs(rs[2]-0.6) > 1e-12 {
		t.Fatalf("rs[2] = %g, want 0.6", rs[2])
	}
}

func TestRelativeProperty(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%100) + 1
		r := rng.New(seed)
		s := UniformRange(p, 10, 100, r)
		rs := Relative(s)
		sum := 0.0
		for k, v := range rs {
			if v <= 0 || v > 1 {
				return false
			}
			// Order is preserved.
			if k > 0 && (s[k] > s[k-1]) != (rs[k] > rs[k-1]) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHomogeneous(t *testing.T) {
	rs := Homogeneous(8)
	for _, v := range rs {
		if math.Abs(v-0.125) > 1e-15 {
			t.Fatalf("homogeneous rs = %g, want 0.125", v)
		}
	}
}

func TestDriftStaysBoundedAndMoves(t *testing.T) {
	r := rng.New(7)
	init := []float64{100, 50}
	d := NewDrift(init, 0.20, r)
	moved := false
	for i := 0; i < 10000; i++ {
		d.OnTaskDone(0)
		d.OnTaskDone(1)
		for k := 0; k < 2; k++ {
			v := d.Speed(k)
			if v < init[k]*0.25-1e-9 || v > init[k]*4+1e-9 {
				t.Fatalf("drifted speed %g outside clamp for initial %g", v, init[k])
			}
			if v != init[k] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("drift never changed any speed")
	}
	// Initial() must report the original speeds.
	for k, v := range d.Initial() {
		if v != init[k] {
			t.Fatalf("Initial()[%d] = %g, want %g", k, v, init[k])
		}
	}
}

func TestDriftStepBound(t *testing.T) {
	// One drift step changes speed by at most the amplitude fraction.
	r := rng.New(9)
	d := NewDrift([]float64{100}, 0.05, r)
	for i := 0; i < 1000; i++ {
		before := d.Speed(0)
		d.OnTaskDone(0)
		after := d.Speed(0)
		if ratio := after / before; ratio < 0.95-1e-9 || ratio > 1.05+1e-9 {
			t.Fatalf("single dyn.5 step changed speed by factor %g", ratio)
		}
	}
}
