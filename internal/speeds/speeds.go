// Package speeds models the processing speeds of a heterogeneous
// platform.
//
// In the paper a platform is a set of p processors where processor k
// performs s_k elementary block tasks per time unit. Speeds may be
// static (drawn once from a distribution) or dynamic (drifting after
// every completed task, scenarios dyn.5 and dyn.20 of Fig. 8). The
// randomized schedulers themselves are agnostic to speeds — they are
// demand-driven — but the simulator and the analysis need them.
package speeds

import (
	"fmt"

	"hetsched/internal/rng"
)

// Model yields the current speed of each processor and is notified
// when tasks complete so that dynamic models can drift.
type Model interface {
	// P returns the number of processors.
	P() int
	// Speed returns the current speed of processor k (always > 0).
	Speed(k int) float64
	// OnTaskDone notifies the model that processor k completed one
	// task; dynamic models may update Speed(k).
	OnTaskDone(k int)
	// Initial returns a copy of the initial speed vector (the values
	// the analysis sees; dynamic drift is invisible to the analysis).
	Initial() []float64
}

// Fixed is a static speed vector.
type Fixed struct {
	s []float64
}

// NewFixed returns a static model with the given speeds.
func NewFixed(s []float64) *Fixed {
	if len(s) == 0 {
		panic("speeds: empty speed vector")
	}
	for k, v := range s {
		if v <= 0 {
			panic(fmt.Sprintf("speeds: non-positive speed %g for processor %d", v, k))
		}
	}
	c := make([]float64, len(s))
	copy(c, s)
	return &Fixed{s: c}
}

// P implements Model.
func (f *Fixed) P() int { return len(f.s) }

// Speed implements Model.
func (f *Fixed) Speed(k int) float64 { return f.s[k] }

// OnTaskDone implements Model; static speeds never change.
func (f *Fixed) OnTaskDone(int) {}

// Initial implements Model.
func (f *Fixed) Initial() []float64 {
	c := make([]float64, len(f.s))
	copy(c, f.s)
	return c
}

// Drift models the paper's dyn.5 / dyn.20 scenarios: after each task
// the processor's speed is multiplied by a factor uniform in
// [1-Amplitude, 1+Amplitude], clamped to stay within [Min, Max] of the
// initial value so speeds remain positive and bounded.
type Drift struct {
	initial   []float64
	current   []float64
	amplitude float64
	min, max  float64
	r         *rng.PCG
}

// NewDrift returns a dynamic model starting from initial speeds with
// the given relative drift amplitude (0.05 for dyn.5, 0.20 for
// dyn.20). Speeds are clamped to [initial/4, initial*4].
func NewDrift(initial []float64, amplitude float64, r *rng.PCG) *Drift {
	f := NewFixed(initial) // validates
	d := &Drift{
		initial:   f.Initial(),
		current:   f.Initial(),
		amplitude: amplitude,
		min:       0.25,
		max:       4.0,
		r:         r,
	}
	return d
}

// P implements Model.
func (d *Drift) P() int { return len(d.current) }

// Speed implements Model.
func (d *Drift) Speed(k int) float64 { return d.current[k] }

// OnTaskDone implements Model: multiplies speed k by a random factor
// in [1-amplitude, 1+amplitude], clamped.
func (d *Drift) OnTaskDone(k int) {
	factor := 1 + d.r.UniformRange(-d.amplitude, d.amplitude)
	v := d.current[k] * factor
	lo, hi := d.initial[k]*d.min, d.initial[k]*d.max
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	d.current[k] = v
}

// Initial implements Model.
func (d *Drift) Initial() []float64 {
	c := make([]float64, len(d.initial))
	copy(c, d.initial)
	return c
}

// UniformRange draws p speeds uniformly in [lo, hi), the paper's
// default being [10, 100].
func UniformRange(p int, lo, hi float64, r *rng.PCG) []float64 {
	if p <= 0 {
		panic("speeds: non-positive processor count")
	}
	if lo <= 0 || hi < lo {
		panic("speeds: invalid range")
	}
	s := make([]float64, p)
	for k := range s {
		s[k] = r.UniformRange(lo, hi)
	}
	return s
}

// Heterogeneity draws p speeds uniformly in [100-h, 100+h] as in
// Fig. 7; h = 0 yields a perfectly homogeneous platform. h must lie in
// [0, 100); h close to 100 gives a large max/min speed ratio.
func Heterogeneity(p int, h float64, r *rng.PCG) []float64 {
	if h < 0 || h >= 100 {
		panic("speeds: heterogeneity must be in [0, 100)")
	}
	if h == 0 {
		s := make([]float64, p)
		for k := range s {
			s[k] = 100
		}
		return s
	}
	return UniformRange(p, 100-h, 100+h, r)
}

// FromSet draws p speeds uniformly from a discrete set of speed
// classes, as in the set.3 and set.5 scenarios of Fig. 8.
func FromSet(p int, classes []float64, r *rng.PCG) []float64 {
	if len(classes) == 0 {
		panic("speeds: empty class set")
	}
	for _, v := range classes {
		if v <= 0 {
			panic("speeds: non-positive class speed")
		}
	}
	s := make([]float64, p)
	for k := range s {
		s[k] = classes[r.Intn(len(classes))]
	}
	return s
}

// Relative converts absolute speeds into relative speeds
// rs_k = s_k / Σ_i s_i.
func Relative(s []float64) []float64 {
	total := 0.0
	for _, v := range s {
		total += v
	}
	if total <= 0 {
		panic("speeds: non-positive total speed")
	}
	rs := make([]float64, len(s))
	for k, v := range s {
		rs[k] = v / total
	}
	return rs
}

// Homogeneous returns the relative-speed vector of a homogeneous
// platform with p processors, i.e. rs_k = 1/p. Used by the
// speed-agnostic threshold estimation of §3.6.
func Homogeneous(p int) []float64 {
	if p <= 0 {
		panic("speeds: non-positive processor count")
	}
	rs := make([]float64, p)
	for k := range rs {
		rs[k] = 1 / float64(p)
	}
	return rs
}
