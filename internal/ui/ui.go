// Package ui embeds the schedd live dashboard: one self-contained
// HTML+JS page (no external assets, no build step) that subscribes to
// the server's SSE event streams and renders a streaming Gantt/cluster
// view plus the /v1/metrics aggregates. The service mounts it at
// GET /v1/ui.
package ui

import _ "embed"

// Dashboard is the dashboard page, served verbatim.
//
//go:embed dashboard.html
var Dashboard []byte
