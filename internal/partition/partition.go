// Package partition implements the static baseline the paper compares
// against (§3.2, reference [2]): partitioning the unit square into p
// rectangles with prescribed areas (the relative speeds) while
// minimizing the sum of half-perimeters, which is the communication
// volume of a fully static allocation of the outer product.
//
// The implementation is the column-based family of partitions:
// processors are sorted by area and assigned to contiguous groups, one
// group per column; a column containing processors of total area w is
// a vertical strip of width w sliced horizontally. For a column with
// m rectangles the half-perimeter sum is m·w + 1, so the total cost of
// a grouping is Σ_j m_j·w_j + c for c columns. The optimal contiguous
// grouping is found by dynamic programming; Beaumont et al. prove the
// best column partition is within 7/4 of the lower bound 2·Σ√area.
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Rect is an axis-aligned rectangle of the unit square assigned to one
// processor.
type Rect struct {
	Proc       int // processor index in the original speed order
	X, Y, W, H float64
}

// HalfPerimeter returns w + h.
func (r Rect) HalfPerimeter() float64 { return r.W + r.H }

// Partition is a column partition of the unit square.
type Partition struct {
	Rects []Rect
	// Cost is the sum of half-perimeters, Σ (w_i + h_i).
	Cost float64
	// Columns is the number of columns used.
	Columns int
}

// LowerBound is the paper's communication lower bound in normalized
// units: 2·Σ_k √rs_k (the half-perimeter sum if every processor could
// get a square of its prescribed area).
func LowerBound(rs []float64) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += math.Sqrt(r)
	}
	return 2 * sum
}

// Columnwise computes the optimal contiguous column partition for the
// given relative speeds (areas summing to 1). Areas are sorted in
// non-increasing order before grouping, as required by the 7/4
// guarantee.
func Columnwise(rs []float64) *Partition {
	p := len(rs)
	if p == 0 {
		panic("partition: empty speed vector")
	}
	total := 0.0
	for k, r := range rs {
		if r <= 0 {
			panic(fmt.Sprintf("partition: non-positive area %g for processor %d", r, k))
		}
		total += r
	}
	if math.Abs(total-1) > 1e-9 {
		panic(fmt.Sprintf("partition: areas sum to %g, want 1", total))
	}

	// Sort processor indices by non-increasing area.
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rs[order[a]] > rs[order[b]] })
	area := make([]float64, p)
	for i, idx := range order {
		area[i] = rs[idx]
	}
	prefix := make([]float64, p+1)
	for i := 0; i < p; i++ {
		prefix[i+1] = prefix[i] + area[i]
	}

	// dp[i] = minimal cost (Σ m_j·w_j + #columns) of partitioning the
	// first i sorted processors into contiguous columns.
	const inf = math.MaxFloat64
	dp := make([]float64, p+1)
	cut := make([]int, p+1)
	cols := make([]int, p+1)
	for i := 1; i <= p; i++ {
		dp[i] = inf
		for j := 0; j < i; j++ {
			w := prefix[i] - prefix[j]
			cost := dp[j] + float64(i-j)*w + 1
			if cost < dp[i] {
				dp[i] = cost
				cut[i] = j
				cols[i] = cols[j] + 1
			}
		}
	}

	// Reconstruct the grouping.
	var bounds []int
	for i := p; i > 0; i = cut[i] {
		bounds = append(bounds, i)
	}
	// bounds holds column right-edges in reverse order.
	for l, r := 0, len(bounds)-1; l < r; l, r = l+1, r-1 {
		bounds[l], bounds[r] = bounds[r], bounds[l]
	}

	part := &Partition{Columns: len(bounds)}
	x := 0.0
	start := 0
	for _, end := range bounds {
		w := prefix[end] - prefix[start]
		y := 0.0
		for i := start; i < end; i++ {
			h := area[i] / w
			part.Rects = append(part.Rects, Rect{
				Proc: order[i],
				X:    x, Y: y, W: w, H: h,
			})
			y += h
		}
		x += w
		start = end
	}
	for _, r := range part.Rects {
		part.Cost += r.HalfPerimeter()
	}
	return part
}

// DiscreteComm maps the continuous partition onto an n×n block grid
// and returns the total number of blocks a static allocation following
// the partition would ship: each processor receives the a-blocks of
// the rows and the b-blocks of the columns its rectangle intersects.
// Row/column boundaries are rounded to whole blocks.
func DiscreteComm(part *Partition, n int) int {
	if n <= 0 {
		panic("partition: non-positive grid size")
	}
	blocks := 0
	for _, r := range part.Rects {
		c0 := int(math.Floor(r.X * float64(n)))
		c1 := int(math.Ceil((r.X + r.W) * float64(n)))
		r0 := int(math.Floor(r.Y * float64(n)))
		r1 := int(math.Ceil((r.Y + r.H) * float64(n)))
		if c1 > n {
			c1 = n
		}
		if r1 > n {
			r1 = n
		}
		blocks += (c1 - c0) + (r1 - r0)
	}
	return blocks
}

// NormalizedCost returns Cost divided by the lower bound; the 7/4
// theorem guarantees this is below 1.75 for the optimal column
// partition.
func (p *Partition) NormalizedCost(rs []float64) float64 {
	return p.Cost / LowerBound(rs)
}
