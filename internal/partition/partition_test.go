package partition

import (
	"math"
	"testing"
	"testing/quick"

	"hetsched/internal/rng"
	"hetsched/internal/speeds"
)

func randomAreas(p int, seed uint64) []float64 {
	r := rng.New(seed)
	return speeds.Relative(speeds.UniformRange(p, 10, 100, r))
}

func TestAreasRespected(t *testing.T) {
	rs := randomAreas(17, 1)
	part := Columnwise(rs)
	if len(part.Rects) != len(rs) {
		t.Fatalf("%d rects for %d processors", len(part.Rects), len(rs))
	}
	seen := make([]bool, len(rs))
	for _, rect := range part.Rects {
		if seen[rect.Proc] {
			t.Fatalf("processor %d assigned twice", rect.Proc)
		}
		seen[rect.Proc] = true
		if got := rect.W * rect.H; math.Abs(got-rs[rect.Proc]) > 1e-9 {
			t.Fatalf("processor %d got area %g, want %g", rect.Proc, got, rs[rect.Proc])
		}
	}
}

func TestRectsTileUnitSquare(t *testing.T) {
	rs := randomAreas(23, 2)
	part := Columnwise(rs)
	// Total area is 1 and rectangles are disjoint: sample points and
	// check each is covered exactly once.
	total := 0.0
	for _, rect := range part.Rects {
		total += rect.W * rect.H
		if rect.X < -1e-9 || rect.Y < -1e-9 ||
			rect.X+rect.W > 1+1e-9 || rect.Y+rect.H > 1+1e-9 {
			t.Fatalf("rect %+v leaves the unit square", rect)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("areas sum to %g", total)
	}
	r := rng.New(3)
	for s := 0; s < 2000; s++ {
		x, y := r.Float64(), r.Float64()
		covered := 0
		for _, rect := range part.Rects {
			if x >= rect.X && x < rect.X+rect.W && y >= rect.Y && y < rect.Y+rect.H {
				covered++
			}
		}
		if covered != 1 {
			t.Fatalf("point (%g,%g) covered %d times", x, y, covered)
		}
	}
}

func TestCostWithinSevenFourths(t *testing.T) {
	// The optimal column partition is a 7/4-approximation of the lower
	// bound (Beaumont et al. 2002).
	for seed := uint64(0); seed < 20; seed++ {
		p := 2 + int(seed)%40
		rs := randomAreas(p, seed)
		part := Columnwise(rs)
		lb := LowerBound(rs)
		if part.Cost < lb-1e-9 {
			t.Fatalf("cost %g below lower bound %g", part.Cost, lb)
		}
		if part.Cost > 1.75*lb+1e-9 {
			t.Fatalf("cost %g exceeds 7/4 of lower bound %g (p=%d)", part.Cost, lb, p)
		}
	}
}

func TestHomogeneousSquareGrid(t *testing.T) {
	// For p = q² equal processors the optimal column partition is the
	// q×q grid with cost 2q.
	for _, q := range []int{2, 3, 4, 5} {
		p := q * q
		rs := make([]float64, p)
		for i := range rs {
			rs[i] = 1 / float64(p)
		}
		part := Columnwise(rs)
		if part.Columns != q {
			t.Fatalf("p=%d: got %d columns, want %d", p, part.Columns, q)
		}
		if want := 2 * float64(q); math.Abs(part.Cost-want) > 1e-9 {
			t.Fatalf("p=%d: cost %g, want %g", p, part.Cost, want)
		}
	}
}

func TestSingleProcessor(t *testing.T) {
	part := Columnwise([]float64{1})
	if part.Cost != 2 || part.Columns != 1 {
		t.Fatalf("single processor: cost %g columns %d", part.Cost, part.Columns)
	}
}

func TestColumnwiseBeatsSingleColumn(t *testing.T) {
	// With many processors a single column (cost p·1 + 1) is terrible;
	// the DP must do better.
	rs := randomAreas(36, 7)
	part := Columnwise(rs)
	if part.Cost >= float64(len(rs))+1 {
		t.Fatalf("DP cost %g not better than single column %g", part.Cost, float64(len(rs))+1)
	}
}

func TestDPOptimalAgainstBruteForce(t *testing.T) {
	// For small p, enumerate every contiguous grouping of the sorted
	// areas and check the DP found the cheapest.
	for seed := uint64(0); seed < 10; seed++ {
		p := 3 + int(seed%5)
		rs := randomAreas(p, 40+seed)
		part := Columnwise(rs)

		// Brute force over bitmask cut positions on sorted areas.
		sorted := append([]float64(nil), rs...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		best := math.MaxFloat64
		for mask := 0; mask < 1<<(p-1); mask++ {
			cost, start := 0.0, 0
			for end := 1; end <= p; end++ {
				if end == p || mask&(1<<(end-1)) != 0 {
					w := 0.0
					for i := start; i < end; i++ {
						w += sorted[i]
					}
					cost += float64(end-start)*w + 1
					start = end
				}
			}
			if cost < best {
				best = cost
			}
		}
		if math.Abs(part.Cost-best) > 1e-9 {
			t.Fatalf("p=%d: DP cost %g, brute force %g", p, part.Cost, best)
		}
	}
}

func TestDiscreteComm(t *testing.T) {
	rs := randomAreas(12, 9)
	part := Columnwise(rs)
	n := 100
	blocks := DiscreteComm(part, n)
	// Discretization rounds outward, so the block count is at least
	// the continuous cost scaled by n, and within p·2 extra rows plus
	// columns of it.
	lo := part.Cost * float64(n)
	if float64(blocks) < lo-1e-6 {
		t.Fatalf("discrete comm %d below continuous %g", blocks, lo)
	}
	if float64(blocks) > lo+float64(4*len(rs)) {
		t.Fatalf("discrete comm %d too far above continuous %g", blocks, lo)
	}
}

func TestNormalizedCostProperty(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%64) + 1
		rs := randomAreas(p, seed)
		part := Columnwise(rs)
		norm := part.NormalizedCost(rs)
		return norm >= 1-1e-9 && norm <= 1.75+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":     func() { Columnwise(nil) },
		"non-sum-1": func() { Columnwise([]float64{0.5, 0.4}) },
		"non-positive": func() {
			Columnwise([]float64{1.5, -0.5})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
