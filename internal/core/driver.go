package core

// Driver generalizes Scheduler to kernels whose allocation state
// advances on completions as well as on requests. The flat kernels
// (outer product, matrix multiplication) commit a task at assignment
// time and never need to hear back; the DAG kernels (Cholesky, LU)
// release dependent tasks only when a completion is reported. Network
// hosts such as internal/service drive a Driver so both families speak
// the same request/complete protocol.
//
// Like Scheduler, a Driver is a single-goroutine state machine: the
// caller serializes access (the service wraps it in a mutex-guarded
// Host, the simulator runs in one goroutine anyway).
type Driver interface {
	// Next computes the next assignment for worker w in [0, P()).
	// ok=false with Remaining() > 0 means "nothing schedulable right
	// now": the worker should retry after some completion is reported
	// (DAG kernels only). ok=false with Remaining() == 0 means the run
	// is drained and the worker can retire.
	Next(w int) (a Assignment, ok bool)
	// Complete reports that worker w finished executing ts. Flat
	// schedulers ignore it; DAG drivers use it to bump tile versions
	// and move newly ready tasks into the ready set. Every task must
	// have been previously assigned to w by Next.
	Complete(w int, ts []Task)
	// Remaining returns the number of tasks not yet retired: not yet
	// allocated for flat kernels, not yet completed for DAG kernels.
	Remaining() int
	// Total returns the total number of tasks of the instance.
	Total() int
	// P returns the number of workers.
	P() int
	// Name returns the strategy name as used in the paper's figures.
	Name() string
}

// BufferedDriver is the Driver analogue of BufferedScheduler: NextInto
// behaves exactly like Next but builds the assignment's Tasks slice in
// buf[:0], growing it when the capacity is insufficient. The ownership
// contract matches BufferedScheduler: the returned Assignment.Tasks
// aliases buf (or its regrown replacement), so it is only valid until
// the next NextInto call with the same buffer.
type BufferedDriver interface {
	Driver
	// NextInto computes the next assignment for worker w, appending
	// the batch's tasks to buf[:0].
	NextInto(w int, buf TaskBuf) (a Assignment, ok bool)
}

// TaskCoster is implemented by drivers whose tasks have heterogeneous
// relative costs (the DAG kernels: a trailing update costs more than a
// panel solve). Substrates that account virtual time treat a task
// without a TaskCoster as one elementary block operation (cost 1).
type TaskCoster interface {
	// TaskCost returns the relative cost of t in elementary block-task
	// units (always > 0).
	TaskCost(t Task) float64
}

// SchedulerDriver adapts a plain Scheduler to the Driver interface:
// completions are no-ops because flat schedulers mark tasks processed
// at assignment time.
type SchedulerDriver struct {
	s Scheduler
}

// NewSchedulerDriver wraps s. The wrapper owns no state of its own, so
// the usual single-goroutine rule applies to the pair as a whole.
func NewSchedulerDriver(s Scheduler) *SchedulerDriver {
	if s == nil {
		panic("core: nil scheduler")
	}
	return &SchedulerDriver{s: s}
}

// Next implements Driver.
func (d *SchedulerDriver) Next(w int) (Assignment, bool) { return d.s.Next(w) }

// NextInto implements BufferedDriver when the wrapped scheduler is
// buffered; otherwise it falls back to the allocating Next path (the
// assignment is still correct, it just does not reuse buf).
func (d *SchedulerDriver) NextInto(w int, buf TaskBuf) (Assignment, bool) {
	if bs, ok := d.s.(BufferedScheduler); ok {
		return bs.NextInto(w, buf)
	}
	return d.s.Next(w)
}

// Complete implements Driver as a no-op.
func (d *SchedulerDriver) Complete(int, []Task) {}

// Remaining implements Driver.
func (d *SchedulerDriver) Remaining() int { return d.s.Remaining() }

// Total implements Driver.
func (d *SchedulerDriver) Total() int { return d.s.Total() }

// P implements Driver.
func (d *SchedulerDriver) P() int { return d.s.P() }

// Name implements Driver.
func (d *SchedulerDriver) Name() string { return d.s.Name() }

// Phase1Tasks implements PhaseObserver by delegating to the wrapped
// scheduler, returning -1 when it is not two-phase (the same sentinel
// sim.Metrics uses).
func (d *SchedulerDriver) Phase1Tasks() int {
	if po, ok := d.s.(PhaseObserver); ok {
		return po.Phase1Tasks()
	}
	return -1
}

// Unwrap returns the wrapped scheduler, for callers that need
// kernel-specific inspection (e.g. the mean-field sampling hooks).
func (d *SchedulerDriver) Unwrap() Scheduler { return d.s }
