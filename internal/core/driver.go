package core

// Driver generalizes Scheduler to kernels whose allocation state
// advances on completions as well as on requests. The flat kernels
// (outer product, matrix multiplication) commit a task at assignment
// time and never need to hear back; the DAG kernels (Cholesky, LU)
// release dependent tasks only when a completion is reported. Network
// hosts such as internal/service drive a Driver so both families speak
// the same request/complete protocol.
//
// Like Scheduler, a Driver is a single-goroutine state machine: the
// caller serializes access (the service wraps it in a mutex-guarded
// Host, the simulator runs in one goroutine anyway).
type Driver interface {
	// Next computes the next assignment for worker w in [0, P()).
	// ok=false with Remaining() > 0 means "nothing schedulable right
	// now": the worker should retry after some completion is reported
	// (DAG kernels only). ok=false with Remaining() == 0 means the run
	// is drained and the worker can retire.
	Next(w int) (a Assignment, ok bool)
	// Complete reports that worker w finished executing ts. Flat
	// schedulers ignore it; DAG drivers use it to bump tile versions
	// and move newly ready tasks into the ready set. Every task must
	// have been previously assigned to w by Next.
	Complete(w int, ts []Task)
	// Remaining returns the number of tasks not yet retired: not yet
	// allocated for flat kernels, not yet completed for DAG kernels.
	Remaining() int
	// Total returns the total number of tasks of the instance.
	Total() int
	// P returns the number of workers.
	P() int
	// Name returns the strategy name as used in the paper's figures.
	Name() string
}

// BufferedDriver is the Driver analogue of BufferedScheduler: NextInto
// behaves exactly like Next but builds the assignment's Tasks slice in
// buf[:0], growing it when the capacity is insufficient. The ownership
// contract matches BufferedScheduler: the returned Assignment.Tasks
// aliases buf (or its regrown replacement), so it is only valid until
// the next NextInto call with the same buffer.
type BufferedDriver interface {
	Driver
	// NextInto computes the next assignment for worker w, appending
	// the batch's tasks to buf[:0].
	NextInto(w int, buf TaskBuf) (a Assignment, ok bool)
}

// TaskCoster is implemented by drivers whose tasks have heterogeneous
// relative costs (the DAG kernels: a trailing update costs more than a
// panel solve). Substrates that account virtual time treat a task
// without a TaskCoster as one elementary block operation (cost 1).
type TaskCoster interface {
	// TaskCost returns the relative cost of t in elementary block-task
	// units (always > 0).
	TaskCost(t Task) float64
}

// Reassigner is an optional Driver capability used for fault
// tolerance: Reassign returns tasks that were granted to worker w by
// Next but will never be completed by it (the worker is presumed dead
// — its lease expired) to the driver's schedulable pool, so later Next
// calls can hand them to surviving workers.
//
// Contract: every reassigned task must have been granted to w and not
// completed or already reassigned; the driver serves it again exactly
// once. Like every other Driver method, Reassign is called from the
// single goroutine (or under the single lock) that owns the driver.
type Reassigner interface {
	// Reassign feeds the abandoned tasks ts, previously granted to
	// worker w, back into the schedulable pool.
	Reassign(w int, ts []Task)
}

// SchedulerDriver adapts a plain Scheduler to the Driver interface:
// completions are no-ops because flat schedulers mark tasks processed
// at assignment time. Reassigned tasks go into a host-level requeue
// that Next serves before stepping the wrapped scheduler: the flat
// schedulers have no notion of un-processing a task, so the requeue
// preserves exactly-once allocation without touching their internal
// data-placement state. A requeued task carries no block cost — the
// original grant already charged the shipment, and the flat
// schedulers' ownership bookkeeping cannot be replayed for the new
// worker (the DAG kernels, which track per-worker tile versions, do
// re-charge; see dag.Driver.Reassign).
type SchedulerDriver struct {
	s       Scheduler
	requeue []Task
}

// NewSchedulerDriver wraps s. The wrapper owns no state of its own, so
// the usual single-goroutine rule applies to the pair as a whole.
func NewSchedulerDriver(s Scheduler) *SchedulerDriver {
	if s == nil {
		panic("core: nil scheduler")
	}
	return &SchedulerDriver{s: s}
}

// popRequeue serves the oldest reclaimed task, if any. One task per
// allocation step mirrors the granularity of the flat schedulers'
// cheapest strategies, so the host's batching loop stays in control of
// assignment sizes.
func (d *SchedulerDriver) popRequeue(buf TaskBuf) (Assignment, bool) {
	if len(d.requeue) == 0 {
		return Assignment{}, false
	}
	t := d.requeue[0]
	d.requeue = d.requeue[1:]
	if len(d.requeue) == 0 {
		d.requeue = nil // release the drained backing array
	}
	return Assignment{Tasks: append(buf[:0], t)}, true
}

// Next implements Driver, serving reclaimed tasks before stepping the
// wrapped scheduler.
func (d *SchedulerDriver) Next(w int) (Assignment, bool) {
	if a, ok := d.popRequeue(nil); ok {
		return a, true
	}
	return d.s.Next(w)
}

// NextInto implements BufferedDriver when the wrapped scheduler is
// buffered; otherwise it falls back to the allocating Next path (the
// assignment is still correct, it just does not reuse buf).
func (d *SchedulerDriver) NextInto(w int, buf TaskBuf) (Assignment, bool) {
	if a, ok := d.popRequeue(buf); ok {
		return a, true
	}
	if bs, ok := d.s.(BufferedScheduler); ok {
		return bs.NextInto(w, buf)
	}
	return d.s.Next(w)
}

// Complete implements Driver as a no-op.
func (d *SchedulerDriver) Complete(int, []Task) {}

// Reassign implements Reassigner: the abandoned tasks enter the
// requeue, which Next drains (oldest first) before stepping the
// scheduler.
func (d *SchedulerDriver) Reassign(_ int, ts []Task) {
	d.requeue = append(d.requeue, ts...)
}

// Remaining implements Driver: unprocessed tasks plus reclaimed tasks
// awaiting reassignment, so a run with an empty scheduler but a
// non-empty requeue is not mistaken for drained.
func (d *SchedulerDriver) Remaining() int { return d.s.Remaining() + len(d.requeue) }

// Total implements Driver.
func (d *SchedulerDriver) Total() int { return d.s.Total() }

// P implements Driver.
func (d *SchedulerDriver) P() int { return d.s.P() }

// Name implements Driver.
func (d *SchedulerDriver) Name() string { return d.s.Name() }

// Phase1Tasks implements PhaseObserver by delegating to the wrapped
// scheduler, returning -1 when it is not two-phase (the same sentinel
// sim.Metrics uses).
func (d *SchedulerDriver) Phase1Tasks() int {
	if po, ok := d.s.(PhaseObserver); ok {
		return po.Phase1Tasks()
	}
	return -1
}

// Unwrap returns the wrapped scheduler, for callers that need
// kernel-specific inspection (e.g. the mean-field sampling hooks).
func (d *SchedulerDriver) Unwrap() Scheduler { return d.s }
