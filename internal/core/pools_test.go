package core

import (
	"testing"
	"testing/quick"

	"hetsched/internal/rng"
)

func TestIndexPoolDrainsExactlyOnce(t *testing.T) {
	r := rng.New(1)
	const n = 257
	p := NewIndexPool(n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		idx, ok := p.Draw(r)
		if !ok {
			t.Fatalf("pool empty after %d draws, want %d", i, n)
		}
		if idx < 0 || idx >= n || seen[idx] {
			t.Fatalf("draw %d returned invalid or duplicate index %d", i, idx)
		}
		seen[idx] = true
		if p.Left() != n-i-1 {
			t.Fatalf("Left = %d after %d draws", p.Left(), i+1)
		}
	}
	if _, ok := p.Draw(r); ok {
		t.Fatal("draw from drained pool succeeded")
	}
}

func TestIndexPoolFirstDrawUniform(t *testing.T) {
	// The first draw from a fresh pool over [0,4) should be roughly
	// uniform across seeds.
	counts := make([]int, 4)
	for seed := uint64(0); seed < 4000; seed++ {
		p := NewIndexPool(4)
		idx, _ := p.Draw(rng.New(seed))
		counts[idx]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("index %d drawn %d/4000 times, expected ~1000", v, c)
		}
	}
}

func TestTaskPoolDraw(t *testing.T) {
	r := rng.New(2)
	tasks := []Task{10, 20, 30, 40}
	p := NewTaskPool(append([]Task(nil), tasks...))
	got := map[Task]bool{}
	for i := 0; i < len(tasks); i++ {
		v, ok := p.Draw(r, nil)
		if !ok {
			t.Fatal("pool drained early")
		}
		if got[v] {
			t.Fatalf("task %d drawn twice", v)
		}
		got[v] = true
	}
	if _, ok := p.Draw(r, nil); ok {
		t.Fatal("draw from empty pool succeeded")
	}
}

func TestTaskPoolSkip(t *testing.T) {
	r := rng.New(3)
	p := NewTaskPool([]Task{1, 2, 3, 4, 5, 6})
	// Skip even tasks: they must be discarded, never returned.
	var odd []Task
	for {
		v, ok := p.Draw(r, func(t Task) bool { return t%2 == 0 })
		if !ok {
			break
		}
		if v%2 == 0 {
			t.Fatalf("skipped task %d returned", v)
		}
		odd = append(odd, v)
	}
	if len(odd) != 3 {
		t.Fatalf("got %d odd tasks, want 3", len(odd))
	}
}

func TestTaskPoolProperty(t *testing.T) {
	// Drawing everything returns exactly the initial multiset.
	f := func(seed uint64, raw []int16) bool {
		tasks := make([]Task, len(raw))
		counts := map[Task]int{}
		for i, v := range raw {
			tasks[i] = Task(v)
			counts[Task(v)]++
		}
		p := NewTaskPool(tasks)
		r := rng.New(seed)
		for {
			v, ok := p.Draw(r, nil)
			if !ok {
				break
			}
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
