// Package core defines the kernel-agnostic part of the paper's
// contribution: the demand-driven scheduler abstraction shared by the
// outer-product and matrix-multiplication kernels, and the bookkeeping
// structures (index pools, task pools) the data-aware strategies rely
// on.
//
// A Scheduler is a pure allocation state machine: it is driven either
// by the event-based simulator (package sim), which advances virtual
// time, or by the real concurrent runtime (package exec), which runs
// worker goroutines executing actual block arithmetic. Keeping the
// allocation logic free of any notion of time or threads is what lets
// the same strategy implementations serve both substrates.
package core

// Task identifies one elementary block operation. For the outer
// product a task encodes a pair (i, j); for matrix multiplication a
// triple (i, j, k). The encoding is owned by the kernel packages.
type Task int64

// Assignment is the unit of work the master hands to a requesting
// worker: a batch of tasks plus the number of data blocks that had to
// be transferred to the worker to make the batch computable.
type Assignment struct {
	// Tasks to execute, already marked processed by the scheduler.
	Tasks []Task
	// Blocks is the number of data blocks sent to the worker for this
	// assignment (the paper's communication volume contribution).
	Blocks int
}

// Scheduler is the master-side allocation state machine. All methods
// are called from a single goroutine (the master); implementations
// need no internal locking.
type Scheduler interface {
	// Next computes the next assignment for worker w in [0, P()).
	// ok is false when no unprocessed task remains; the returned
	// assignment is then empty. An assignment may contain zero tasks
	// with Blocks > 0: the data-aware strategies sometimes ship fresh
	// blocks whose whole row/column of tasks happens to be already
	// processed — exactly the end-game inefficiency the two-phase
	// variants fix.
	Next(w int) (a Assignment, ok bool)
	// Remaining returns the number of unprocessed tasks.
	Remaining() int
	// Total returns the total number of tasks of the instance.
	Total() int
	// P returns the number of workers.
	P() int
	// Name returns the strategy name as used in the paper's figures.
	Name() string
}

// TaskBuf is a reusable assignment-task buffer. A driver loop that
// calls a BufferedScheduler keeps one TaskBuf per worker and passes it
// to NextInto on every request, so the scheduler appends tasks into
// recycled capacity instead of allocating a fresh slice per
// assignment. The zero value is ready to use.
type TaskBuf []Task

// BufferedScheduler is an optional extension of Scheduler for
// allocation-free driver loops: NextInto behaves exactly like Next but
// builds the assignment's Tasks slice in buf[:0], growing it when the
// capacity is insufficient.
//
// Ownership contract: the returned Assignment.Tasks aliases buf (or
// its regrown replacement, which the caller should store back for
// reuse), so it is only valid until the next NextInto call with the
// same buffer. Callers that retain assignments must copy the slice —
// or simply call Next, which always allocates.
type BufferedScheduler interface {
	Scheduler
	// NextInto computes the next assignment for worker w, appending
	// the batch's tasks to buf[:0].
	NextInto(w int, buf TaskBuf) (a Assignment, ok bool)
}

// PhaseObserver is implemented by two-phase schedulers that want to
// report when they switched strategies; the experiment harness uses it
// to report the fraction of tasks processed in phase 1.
type PhaseObserver interface {
	// Phase1Tasks returns the number of tasks allocated during phase 1
	// (meaningful once the scheduler is drained).
	Phase1Tasks() int
}
