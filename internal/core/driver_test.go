package core

import "testing"

// stubScheduler serves tasks 0..total-1 one per step, like the random
// flat strategies.
type stubScheduler struct {
	next, total int
}

func (s *stubScheduler) Next(w int) (Assignment, bool) {
	if s.next >= s.total {
		return Assignment{}, false
	}
	t := Task(s.next)
	s.next++
	return Assignment{Tasks: []Task{t}, Blocks: 1}, true
}
func (s *stubScheduler) Remaining() int { return s.total - s.next }
func (s *stubScheduler) Total() int     { return s.total }
func (s *stubScheduler) P() int         { return 2 }
func (s *stubScheduler) Name() string   { return "Stub" }

// TestSchedulerDriverRequeue pins the host-level requeue that backs
// lease reclamation for the flat kernels: reassigned tasks are served
// again — oldest first, one per step, before the scheduler advances —
// and count toward Remaining until they are handed back out.
func TestSchedulerDriverRequeue(t *testing.T) {
	d := NewSchedulerDriver(&stubScheduler{total: 4})
	var _ Reassigner = d

	a0, _ := d.Next(0)
	a1, _ := d.Next(0)
	if a0.Tasks[0] != 0 || a1.Tasks[0] != 1 {
		t.Fatalf("scheduler served %v then %v", a0.Tasks, a1.Tasks)
	}
	if d.Remaining() != 2 {
		t.Fatalf("Remaining = %d after two grants, want 2", d.Remaining())
	}

	// Worker 0 dies holding tasks 0 and 1; they come back in grant
	// order, before the scheduler's own task 2, with no block charge
	// (the flat schedulers cannot replay their placement bookkeeping).
	d.Reassign(0, []Task{a0.Tasks[0], a1.Tasks[0]})
	if d.Remaining() != 4 {
		t.Fatalf("Remaining = %d after reassign, want 4", d.Remaining())
	}
	var buf TaskBuf
	for i, want := range []Task{0, 1, 2, 3} {
		a, ok := d.NextInto(1, buf)
		if !ok || len(a.Tasks) != 1 || a.Tasks[0] != want {
			t.Fatalf("step %d: got %+v ok=%v, want task %d", i, a, ok, want)
		}
		if want < 2 && a.Blocks != 0 {
			t.Fatalf("requeued task %d charged %d blocks, want 0", want, a.Blocks)
		}
		buf = a.Tasks
	}
	if _, ok := d.Next(1); ok {
		t.Fatal("drained driver still serving")
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain, want 0", d.Remaining())
	}
}
