package core

import (
	"encoding/binary"
	"fmt"
)

// MutationOp enumerates the replayable state transitions of a run.
// Together with Mutation they form the command-sourcing layer under
// internal/durable: because every Driver is a deterministic
// single-goroutine state machine, journaling the *inputs* of each
// transition (who polled, what they reported, when) is enough to
// rebuild the exact master state by re-executing the same code path.
type MutationOp uint8

const (
	// MutCreate records a run creation. Payload carries the canonical
	// resolved creation record (internal/service's createRecord JSON:
	// the validated request plus the resolved batch/lease and the
	// creation instant), so a replayed create never depends on the
	// restarted daemon's flag defaults.
	MutCreate MutationOp = iota + 1
	// MutPoll records one accepted worker poll: Worker reported Tasks
	// complete at TimeNs and was stepped through the driver. Rejected
	// polls (409 conflicts, stale reports, bad workers) mutate nothing
	// and are deliberately not journaled.
	MutPoll
	// MutReclaim records one lease-reclamation pass that expired at
	// least one grant at TimeNs. Passes that find nothing are
	// stateless scans and are not journaled.
	MutReclaim
	// MutExpire records the run being marked expired (explicit DELETE
	// or registry TTL).
	MutExpire
	// MutSwept records the janitor removing the run from the registry.
	MutSwept
)

// String names the op for diagnostics.
func (op MutationOp) String() string {
	switch op {
	case MutCreate:
		return "create"
	case MutPoll:
		return "poll"
	case MutReclaim:
		return "reclaim"
	case MutExpire:
		return "expire"
	case MutSwept:
		return "swept"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Mutation is one typed, replayable state transition of one run. Seq
// is the per-run mutation sequence number (the create is 1): snapshots
// record how many mutations they already contain, and recovery skips
// journal records with Seq at or below that watermark, so a snapshot
// plus any journal suffix that covers the rest replays to the exact
// live state.
type Mutation struct {
	Op      MutationOp
	Run     string
	Seq     uint64
	TimeNs  int64
	Worker  int32
	Tasks   []Task // completed report (MutPoll)
	Payload []byte // creation record (MutCreate)
}

// Mutation wire format (the payload inside a durable journal frame;
// framing and CRC are the journal's concern):
//
//	record := op(u8) runLen(uvarint) run seq(uvarint) timeNs(u64 LE)
//	          worker+1(uvarint) nTasks(uvarint) task(uvarint)*
//	          payloadLen(uvarint) payload
//
// Everything except timeNs is a varint: the journal's fsync tax is
// proportional to bytes written (measured ~3ns/byte amortized), so a
// steady-state poll record at ~40 bytes instead of ~80 is a real
// per-poll saving, and run ids, sequence numbers, worker indices and
// task ids are all small in practice. timeNs stays fixed 8-byte
// little-endian — UnixNanos never encode shorter. worker is offset by
// one so the registry records' -1 stays a 1-byte varint. The encoder
// is allocation-free into a reused buffer, and the decoder stays
// total: binary.Uvarint rejects truncation and overflow, and every
// length is bounds-checked before use (FuzzJournalDecode pins this).

// maxMutationTasks bounds the task count a decoder will accept; it is
// far above any real report (maxBatch is 1<<12) and exists so corrupt
// lengths fail fast instead of allocating gigabytes.
const maxMutationTasks = 1 << 24

// maxMutationPayload bounds the creation-record payload (the service
// caps request bodies at 1 MiB).
const maxMutationPayload = 1 << 21

// AppendMutation appends the wire encoding of one mutation to dst and
// returns the extended slice. Explicit arguments (rather than a
// *Mutation) keep the hot poll path free of an escaping composite
// literal.
func AppendMutation(dst []byte, op MutationOp, run string, seq uint64, timeNs int64, worker int32, tasks []Task, payload []byte) []byte {
	if worker < -1 {
		panic("core: worker below -1 exceeds mutation wire format")
	}
	dst = append(dst, byte(op))
	dst = binary.AppendUvarint(dst, uint64(len(run)))
	dst = append(dst, run...)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(timeNs))
	dst = binary.AppendUvarint(dst, uint64(worker+1))
	dst = binary.AppendUvarint(dst, uint64(len(tasks)))
	for _, t := range tasks {
		dst = binary.AppendUvarint(dst, uint64(t))
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return dst
}

// DecodeMutation parses one mutation record occupying exactly b. It is
// total on arbitrary bytes: any truncation, trailing garbage or insane
// length fails with an error, never a panic (FuzzJournalDecode pins
// this). The returned Tasks and Payload are fresh copies — they do not
// alias b.
func DecodeMutation(b []byte) (Mutation, error) {
	var m Mutation
	if len(b) < 1 {
		return m, fmt.Errorf("core: mutation record truncated (%d bytes)", len(b))
	}
	op := MutationOp(b[0])
	if op < MutCreate || op > MutSwept {
		return m, fmt.Errorf("core: unknown mutation op %#02x", b[0])
	}
	i := 1
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(b[i:])
		if n <= 0 { // truncated or >64-bit overflow
			return 0, false
		}
		i += n
		return v, true
	}
	runLen, ok := next()
	if !ok || runLen > uint64(len(b)-i) {
		return m, fmt.Errorf("core: mutation run id exceeds record size")
	}
	m.Op = op
	m.Run = string(b[i : i+int(runLen)])
	i += int(runLen)
	seq, ok := next()
	if !ok {
		return m, fmt.Errorf("core: mutation record truncated at seq")
	}
	m.Seq = seq
	if len(b)-i < 8 {
		return m, fmt.Errorf("core: mutation record truncated at timestamp")
	}
	m.TimeNs = int64(binary.LittleEndian.Uint64(b[i:]))
	i += 8
	workerP1, ok := next()
	if !ok || workerP1 > 1<<31 {
		return m, fmt.Errorf("core: mutation worker index out of range")
	}
	m.Worker = int32(int64(workerP1) - 1)
	nTasks, ok := next()
	if !ok || nTasks > maxMutationTasks || nTasks > uint64(len(b)-i) {
		return m, fmt.Errorf("core: mutation task count %d exceeds record size", nTasks)
	}
	if nTasks > 0 {
		m.Tasks = make([]Task, nTasks)
		for j := range m.Tasks {
			t, ok := next()
			if !ok {
				return m, fmt.Errorf("core: mutation record truncated at task %d", j)
			}
			m.Tasks[j] = Task(t)
		}
	}
	nPayload, ok := next()
	if !ok || nPayload > maxMutationPayload || nPayload > uint64(len(b)-i) {
		return m, fmt.Errorf("core: mutation payload length %d exceeds record size", nPayload)
	}
	if nPayload > 0 {
		m.Payload = append([]byte(nil), b[i:i+int(nPayload)]...)
		i += int(nPayload)
	}
	if i != len(b) {
		return m, fmt.Errorf("core: %d trailing bytes after mutation record", len(b)-i)
	}
	return m, nil
}
