package core

import "hetsched/internal/rng"

// IndexPool draws, without replacement and in uniformly random order,
// indices from [0, n). The data-aware strategies use one pool per
// processor and per dimension to pick the "fresh" row/column/layer
// indices a processor does not know yet.
type IndexPool struct {
	remaining []int32
}

// NewIndexPool returns a pool over [0, n).
func NewIndexPool(n int) *IndexPool {
	p := &IndexPool{remaining: make([]int32, n)}
	for i := range p.remaining {
		p.remaining[i] = int32(i)
	}
	return p
}

// Draw removes and returns a uniformly random index, with ok=false
// when the pool is empty.
func (p *IndexPool) Draw(r *rng.PCG) (idx int, ok bool) {
	n := len(p.remaining)
	if n == 0 {
		return 0, false
	}
	at := r.Intn(n)
	v := p.remaining[at]
	p.remaining[at] = p.remaining[n-1]
	p.remaining = p.remaining[:n-1]
	return int(v), true
}

// Left returns the number of indices not yet drawn.
func (p *IndexPool) Left() int { return len(p.remaining) }

// TaskPool holds a multiset-free pool of task identifiers supporting
// O(1) uniform random draws with removal and O(1) deletion of tasks
// that other processors processed in the meantime (lazy deletion).
//
// The random single-task strategies (RandomOuter/RandomMatrix and the
// second phase of the two-phase strategies) draw from a TaskPool; the
// pool is rebuilt from the processed bit set when a two-phase strategy
// switches.
type TaskPool struct {
	tasks []Task
}

// NewTaskPool returns a pool containing tasks. The slice is owned by
// the pool afterwards.
func NewTaskPool(tasks []Task) *TaskPool {
	return &TaskPool{tasks: tasks}
}

// Draw removes and returns a uniformly random task, skipping (and
// discarding) tasks for which skip returns true. ok is false when the
// pool is exhausted.
func (p *TaskPool) Draw(r *rng.PCG, skip func(Task) bool) (t Task, ok bool) {
	for {
		n := len(p.tasks)
		if n == 0 {
			return 0, false
		}
		at := r.Intn(n)
		v := p.tasks[at]
		p.tasks[at] = p.tasks[n-1]
		p.tasks = p.tasks[:n-1]
		if skip == nil || !skip(v) {
			return v, true
		}
	}
}

// Len returns the number of tasks still in the pool (including tasks
// that would be skipped at draw time).
func (p *TaskPool) Len() int { return len(p.tasks) }
