package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hetsched/internal/core"
	"hetsched/internal/trace"
)

// collect replays l into a slice.
func collect(t *testing.T, l *Log) []core.Mutation {
	t.Helper()
	var out []core.Mutation
	if err := l.Replay(func(m core.Mutation) error {
		out = append(out, m)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// reopen closes l and opens the directory again, as recovery would.
func reopen(t *testing.T, l *Log) *Log {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	nl, err := Open(l.Dir())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { nl.Close() })
	return nl
}

func TestJournalRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.AppendCreate("r1", 1, 100, []byte(`{"id":"r1"}`))
	l.AppendPoll("r1", 2, 200, 0, nil)
	l.AppendPoll("r1", 3, 300, 1, []core.Task{7, 9})
	l.AppendReclaim("r1", 4, 400)
	l.AppendExpire("r1", 5, 500)
	l.AppendSwept("r1", 6, 600)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got := collect(t, reopen(t, l))
	want := []core.Mutation{
		{Op: core.MutCreate, Run: "r1", Seq: 1, TimeNs: 100, Worker: -1, Payload: []byte(`{"id":"r1"}`)},
		{Op: core.MutPoll, Run: "r1", Seq: 2, TimeNs: 200, Worker: 0},
		{Op: core.MutPoll, Run: "r1", Seq: 3, TimeNs: 300, Worker: 1, Tasks: []core.Task{7, 9}},
		{Op: core.MutReclaim, Run: "r1", Seq: 4, TimeNs: 400, Worker: -1},
		{Op: core.MutExpire, Run: "r1", Seq: 5, TimeNs: 500, Worker: -1},
		{Op: core.MutSwept, Run: "r1", Seq: 6, TimeNs: 600, Worker: -1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed mutations diverge:\n got %+v\nwant %+v", got, want)
	}
}

func TestJournalUncommittedIsInvisible(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.AppendPoll("r1", 1, 100, 0, nil)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	l.AppendPoll("r1", 2, 200, 0, nil) // buffered, never committed
	// Simulate the kill: read the segment as it is on disk, bypassing
	// Close's flush.
	data, err := os.ReadFile(filepath.Join(l.Dir(), segmentName(l.Gen())))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	n := 0
	if _, err := DecodeFrames(data, func(core.Mutation) error { n++; return nil }); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != 1 {
		t.Fatalf("on-disk frames = %d, want 1 (uncommitted append must not be visible)", n)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mangle  func([]byte) []byte
		survive int
	}{
		{"truncated mid frame", func(b []byte) []byte { return b[:len(b)-3] }, 2},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, 2},
		{"flipped crc byte", func(b []byte) []byte { b[len(b)-20] ^= 0xff; return b }, 2},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe) }, 3},
		{"insane length", func(b []byte) []byte {
			return append(b, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1, 2, 3)
		}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, err := Open(t.TempDir())
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			l.AppendCreate("r1", 1, 100, []byte(`{}`))
			l.AppendPoll("r1", 2, 200, 0, nil)
			l.AppendPoll("r1", 3, 300, 1, []core.Task{4})
			if err := l.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			seg := filepath.Join(l.Dir(), segmentName(l.Gen()))
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if err := os.WriteFile(seg, tc.mangle(data), 0o644); err != nil {
				t.Fatalf("write: %v", err)
			}
			nl, err := Open(l.Dir())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer nl.Close()
			got := collect(t, nl)
			if len(got) != tc.survive {
				t.Fatalf("replayed %d mutations, want %d", len(got), tc.survive)
			}
			for i, m := range got {
				if m.Seq != uint64(i+1) {
					t.Fatalf("mutation %d has seq %d", i, m.Seq)
				}
			}
		})
	}
}

// TestJournalTornInteriorGenerationReplaysLaterGenerations pins the
// crash-then-crash-again sequence: gen 1 is torn by the first kill, the
// restarted process acknowledges new mutations into gen 2, and a later
// restart must replay gen 2 — a torn tail ends only its own generation,
// never the whole journal.
func TestJournalTornInteriorGenerationReplaysLaterGenerations(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.AppendCreate("r1", 1, 100, []byte(`{}`))
	l.AppendPoll("r1", 2, 200, 0, nil)
	l.AppendPoll("r1", 3, 300, 1, nil)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	seg := filepath.Join(dir, segmentName(l.Gen()))
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The kill interrupts the write of seq 3: tear its frame.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}
	// The restarted process replays seqs 1–2 and acknowledges 3–4 into
	// the next generation.
	l, err = Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	l.AppendPoll("r1", 3, 350, 1, nil)
	l.AppendPoll("r1", 4, 400, 0, nil)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got := collect(t, reopen(t, l))
	want := []uint64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("replayed %d mutations (%+v), want seqs %v", len(got), got, want)
	}
	for i, m := range got {
		if m.Seq != want[i] {
			t.Fatalf("mutation %d has seq %d, want %d", i, m.Seq, want[i])
		}
	}
	if got[2].TimeNs != 350 {
		t.Fatalf("seq 3 replayed from the torn generation (TimeNs %d), want the re-acknowledged record (350)", got[2].TimeNs)
	}
}

// TestJournalDamagedGenerationSealedOnCommit pins the partial-write
// recovery path: once a write error leaves torn bytes in a generation,
// the next commit must not rewrite the buffer after them — it seals the
// damaged generation and retries into a fresh one, and replay sees
// every committed frame exactly once.
func TestJournalDamagedGenerationSealedOnCommit(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.AppendCreate("r1", 1, 100, []byte(`{}`))
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	gen := l.Gen()
	// Simulate a write(2) that failed after landing some bytes.
	l.mu.Lock()
	l.f.Write([]byte{0x07, 0x00}) // torn frame prefix on disk
	l.damaged = true
	l.mu.Unlock()
	l.AppendPoll("r1", 2, 200, 0, nil)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit after damage: %v", err)
	}
	if got := l.Gen(); got != gen+1 {
		t.Fatalf("generation after damaged commit = %d, want %d (sealed and rotated)", got, gen+1)
	}
	got := collect(t, reopen(t, l))
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("replayed %+v, want seqs [1 2]", got)
	}
}

func TestJournalRotateAndPrune(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	l.AppendCreate("r1", 1, 100, []byte(`{}`))
	l.AppendPoll("r1", 2, 200, 0, nil)
	sealed, err := l.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	// Checkpoint: snapshot r1 at watermark 2, then prune the sealed
	// generation and a stale older snapshot.
	for _, seq := range []uint64{1, 2} {
		if err := l.WriteSnapshot(&RunSnapshot{ID: "r1", Mutations: seq, Request: []byte(`{}`)}); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
	}
	if err := l.Prune(sealed, map[string]uint64{"r1": 2}); err != nil {
		t.Fatalf("prune: %v", err)
	}
	gens, snaps, err := scanDir(l.Dir())
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(gens) != 1 || gens[0] != sealed+1 {
		t.Fatalf("generations after prune = %v, want [%d]", gens, sealed+1)
	}
	if len(snaps) != 1 || snaps[0].seq != 2 {
		t.Fatalf("snapshots after prune = %+v, want the seq-2 keeper only", snaps)
	}
	// Post-rotation appends land in the live generation and survive.
	l.AppendPoll("r1", 3, 300, 1, nil)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got := collect(t, reopen(t, l))
	if len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("replay after prune = %+v, want only seq 3", got)
	}
	ss, err := l.LoadSnapshots()
	if err != nil {
		t.Fatalf("load snapshots: %v", err)
	}
	if len(ss) != 1 || ss["r1"] == nil || ss["r1"].Mutations != 2 {
		t.Fatalf("loaded snapshots = %+v, want r1@2", ss)
	}
}

// goldenSnapshot exercises every field of the snapshot codec.
func goldenSnapshot() *RunSnapshot {
	return &RunSnapshot{
		ID:        "r-golden.1",
		Mutations: 42,
		Expired:   true,
		Request:   []byte(`{"id":"r-golden.1","kernel":"outer"}`),
		CreatedNs: 1000, StartNs: 1000, LastNs: 5000, LastPollNs: 6000,
		Assigned: 9, Completed: 7, Reclaimed: 1, Blocks: 20, Requests: 5, Polls: 8,
		BatchN: 5, BatchMean: 1.8, BatchM2: 0.8, BatchMin: 1, BatchMax: 3,
		BatchHist: []int64{3, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		Workers: []WorkerCounters{
			{Requests: 3, Tasks: 4, Blocks: 12, Reclaimed: 1},
			{Requests: 2, Tasks: 3, Blocks: 8},
		},
		Segments: []trace.Segment{
			{Proc: 0, Start: 0, End: 1.5, Tasks: 2, Blocks: 6},
			{Proc: 1, Start: 0.5, End: 0.5, Tasks: 1, Blocks: 2},
		},
		Open:      []int32{-1, 1},
		Grants:    []Grant{{Task: 3, ExpiryNs: 9000, Worker: 1}, {Task: 5, ExpiryNs: 9500, Worker: 0}},
		Stains:    []Stain{{Task: 2, Worker: 0}},
		DriverOps: []byte{'n', 0, 0, 0, 0, 'c', 0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for name, s := range map[string]*RunSnapshot{
		"golden": goldenSnapshot(),
		"empty":  {ID: "r0", Mutations: 1, Request: []byte(`{}`)},
	} {
		t.Run(name, func(t *testing.T) {
			enc := AppendSnapshot(nil, s)
			got, err := DecodeSnapshot(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			re := AppendSnapshot(nil, got)
			if !bytes.Equal(enc, re) {
				t.Fatalf("re-encode is not bit-identical:\n %x\n %x", enc, re)
			}
			if got.ID != s.ID || got.Mutations != s.Mutations || got.Expired != s.Expired {
				t.Fatalf("header fields diverge: %+v vs %+v", got, s)
			}
			if !reflect.DeepEqual(got.Grants, s.Grants) || !reflect.DeepEqual(got.Segments, s.Segments) {
				t.Fatalf("slices diverge: %+v vs %+v", got, s)
			}
		})
	}
}

func TestSnapshotDamageRejected(t *testing.T) {
	enc := AppendSnapshot(nil, goldenSnapshot())
	if _, err := DecodeSnapshot(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated snapshot decoded")
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("snapshot with trailing byte decoded")
	}
	for i := 0; i < len(enc); i += 7 {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("snapshot with byte %d flipped decoded", i)
		}
	}
}

func TestLoadSnapshotsSkipsDamaged(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	good := goldenSnapshot()
	good.Mutations = 5
	if err := l.WriteSnapshot(good); err != nil {
		t.Fatalf("write: %v", err)
	}
	// A later snapshot whose write the crash interrupted: valid name,
	// torn content.
	torn := AppendSnapshot(nil, goldenSnapshot())
	if err := os.WriteFile(filepath.Join(l.Dir(), snapshotName(good.ID, 9)), torn[:len(torn)/2], 0o644); err != nil {
		t.Fatalf("write torn: %v", err)
	}
	ss, err := l.LoadSnapshots()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	s := ss[good.ID]
	if s == nil || s.Mutations != 5 {
		t.Fatalf("loaded %+v, want the intact seq-5 snapshot (older + longer tail wins)", s)
	}
}
