package durable

import (
	"testing"

	"hetsched/internal/core"
)

// BenchmarkAppendPollCommit prices the journal's share of one poll in
// isolation: framing a steady-state MutPoll record into the commit
// buffer and handing it to the kernel with one write(2) (fsync
// amortized per SyncEvery bytes). The delta between the service rows
// BenchmarkServiceHostNextLease and BenchmarkServiceHostNextJournal
// should track this number.
func BenchmarkAppendPollCommit(b *testing.B) {
	jr, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer jr.Close()
	tasks := []core.Task{101, 2002, 30003, 4004}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jr.AppendPoll("bench-1", uint64(i+1), int64(i)*1000, int32(i%64), tasks)
		if err := jr.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
