package durable

import (
	"bytes"
	"strings"
	"testing"

	"hetsched/internal/core"
)

// recordedMigration journals a short run life (create, polls, a
// reclaim), snapshots it mid-stream and keeps appending, then
// scavenges the transfer stream exactly the way the death path does.
// The result is a realistic snapshot+tail stream for tests and fuzz
// seeds.
func recordedMigration(t testing.TB) []byte {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	l.AppendCreate("mig-r1", 1, 100, []byte(`{"id":"mig-r1","kernel":"outer"}`))
	l.AppendPoll("mig-r1", 2, 200, 0, nil)
	l.AppendPoll("mig-r1", 3, 300, 1, []core.Task{1, 2})
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	snap := goldenSnapshot()
	snap.ID, snap.Mutations = "mig-r1", 3
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	l.AppendReclaim("mig-r1", 4, 400)
	l.AppendPoll("mig-r1", 5, 500, 0, []core.Task{3})
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	stream, err := ExtractTransfer(dir, "mig-r1")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return stream
}

func TestTransferRoundTrip(t *testing.T) {
	stream := recordedMigration(t)
	snap, tail, err := DecodeTransfer(stream)
	if err != nil {
		t.Fatalf("decode recorded migration: %v", err)
	}
	if snap == nil || snap.ID != "mig-r1" || snap.Mutations != 3 {
		t.Fatalf("snapshot = %+v, want mig-r1@3", snap)
	}
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("tail = %+v, want seq 4,5", tail)
	}
	if re := AppendTransfer(nil, snap, tail); !bytes.Equal(re, stream) {
		t.Fatalf("transfer encoding is not canonical:\n in  %x\n out %x", stream, re)
	}
}

func TestDecodeTransferRejects(t *testing.T) {
	good := recordedMigration(t)
	create := core.Mutation{Op: core.MutCreate, Run: "r1", Seq: 1, TimeNs: 10, Payload: []byte(`{}`)}
	poll := func(run string, seq uint64) core.Mutation {
		return core.Mutation{Op: core.MutPoll, Run: run, Seq: seq, TimeNs: 20}
	}
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-3] ^= 0x40

	cases := map[string]struct {
		b    []byte
		want string
	}{
		"empty input":        {nil, "not a transfer stream"},
		"bad magic":          {[]byte("HTX2\x00"), "not a transfer stream"},
		"bad flag":           {[]byte("HTX1\x07"), "non-canonical snapshot flag"},
		"empty stream":       {AppendTransfer(nil, nil, nil), "empty transfer stream"},
		"snap len truncated": {append([]byte("HTX1\x01"), 0xff), "snapshot length truncated"},
		"snap truncated":     {good[:len(transferMagic)+1+4+10], "snapshot truncated"},
		"frame torn":         {good[:len(good)-3], "frame truncated"},
		"header torn":        {good[:len(good)-1], "frame"},
		"frame corrupt":      {corrupt, "CRC mismatch"},
		"trailing bytes":     {append(append([]byte(nil), good...), 0xaa), "frame header truncated"},
		"no create first": {
			AppendTransfer(nil, nil, []core.Mutation{poll("r1", 1)}),
			"must start with create seq 1",
		},
		"create not seq 1": {
			AppendTransfer(nil, nil, []core.Mutation{{Op: core.MutCreate, Run: "r1", Seq: 2, Payload: []byte(`{}`)}}),
			"must start with create seq 1",
		},
		"mixed runs": {
			AppendTransfer(nil, nil, []core.Mutation{create, poll("r2", 2)}),
			"mixes runs",
		},
		"sequence gap": {
			AppendTransfer(nil, nil, []core.Mutation{create, poll("r1", 3)}),
			"sequence gap",
		},
		"gap above snapshot": {
			AppendTransfer(nil, &RunSnapshot{ID: "r1", Mutations: 3, Request: []byte(`{}`)},
				[]core.Mutation{poll("r1", 5)}),
			"sequence gap",
		},
		"snapshot tail mismatch": {
			AppendTransfer(nil, &RunSnapshot{ID: "other", Mutations: 3, Request: []byte(`{}`)},
				[]core.Mutation{poll("r1", 4)}),
			"mixes runs",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := DecodeTransfer(tc.b)
			if err == nil {
				t.Fatalf("decode accepted damaged stream")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTransferRuns(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	l.AppendCreate("alive", 1, 100, []byte(`{}`))
	l.AppendCreate("gone", 1, 110, []byte(`{}`))
	l.AppendSwept("gone", 2, 120)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// A snapshot alone (journal generations pruned) still counts.
	if err := l.WriteSnapshot(&RunSnapshot{ID: "frozen", Mutations: 7, Request: []byte(`{}`)}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ids, err := TransferRuns(dir)
	if err != nil {
		t.Fatalf("transfer runs: %v", err)
	}
	if len(ids) != 2 || ids[0] != "alive" || ids[1] != "frozen" {
		t.Fatalf("TransferRuns = %v, want [alive frozen]", ids)
	}
}

func TestExtractTransferDupAndGap(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	l.AppendCreate("r1", 1, 100, []byte(`{}`))
	l.AppendPoll("r1", 2, 200, 0, nil)
	// Residue of a damaged-generation retry: seq 2 written again.
	l.AppendPoll("r1", 2, 200, 0, nil)
	l.AppendPoll("r1", 3, 300, 1, nil)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	stream, err := ExtractTransfer(dir, "r1")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	_, tail, err := DecodeTransfer(stream)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(tail) != 3 || tail[2].Seq != 3 {
		t.Fatalf("duplicate not skipped: tail %+v", tail)
	}

	l.AppendPoll("r1", 5, 500, 0, nil) // gap: seq 4 never acknowledged
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := ExtractTransfer(dir, "r1"); err == nil || !strings.Contains(err.Error(), "journal gap") {
		t.Fatalf("gap extraction error = %v, want journal gap", err)
	}
}

func TestExtractTransferSweptAndMissing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	l.AppendCreate("r1", 1, 100, []byte(`{}`))
	l.AppendSwept("r1", 2, 200)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := ExtractTransfer(dir, "r1"); err == nil || !strings.Contains(err.Error(), "swept or migrated away") {
		t.Fatalf("swept extraction error = %v, want swept", err)
	}
	if _, err := ExtractTransfer(dir, "nope"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing extraction error = %v, want not found", err)
	}
}

// FuzzTransferDecode is the differential fuzzer for the migration wire
// format. Two properties, pinned on arbitrary bytes:
//
//	totality  — DecodeTransfer never panics; truncation, corruption and
//	            trailing bytes are rejected with an error;
//	canonical — any accepted stream re-encodes bit-for-bit:
//	            AppendTransfer(nil, DecodeTransfer(b)) == b, so the
//	            destination's re-export of an imported run reproduces
//	            the source's stream exactly.
func FuzzTransferDecode(f *testing.F) {
	recorded := recordedMigration(f)
	f.Add(recorded)
	f.Add(recorded[:len(recorded)-5])
	mangled := append([]byte(nil), recorded...)
	mangled[len(mangled)/2] ^= 0x80
	f.Add(mangled)
	f.Add(append(append([]byte(nil), recorded...), 0x00))
	f.Add(AppendTransfer(nil, goldenSnapshot(), nil))
	f.Add(AppendTransfer(nil, nil, []core.Mutation{
		{Op: core.MutCreate, Run: "r1", Seq: 1, TimeNs: 10, Payload: []byte(`{"id":"r1"}`)},
		{Op: core.MutPoll, Run: "r1", Seq: 2, TimeNs: 20, Worker: 1, Tasks: []core.Task{7}},
	}))
	f.Add([]byte{})
	f.Add([]byte("HTX1"))
	f.Add([]byte("HTX1\x00"))
	f.Add([]byte("HTX1\x01\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, b []byte) {
		snap, tail, err := DecodeTransfer(b)
		if err != nil {
			return
		}
		if snap == nil && len(tail) == 0 {
			t.Fatalf("accepted stream with neither snapshot nor tail")
		}
		if re := AppendTransfer(nil, snap, tail); !bytes.Equal(re, b) {
			t.Fatalf("accepted transfer is not canonical:\n in  %x\n out %x", b, re)
		}
	})
}
