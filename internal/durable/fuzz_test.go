package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hetsched/internal/core"
)

// FuzzJournalDecode feeds arbitrary bytes to the frame decoder: it must
// never panic, must consume only CRC-valid frames, and everything it
// does consume must re-frame to the identical bytes.
func FuzzJournalDecode(f *testing.F) {
	// Seed with a real committed segment covering every record type.
	dir := f.TempDir()
	l, err := Open(dir)
	if err != nil {
		f.Fatalf("open: %v", err)
	}
	l.AppendCreate("r1", 1, 100, []byte(`{"id":"r1","kernel":"outer"}`))
	l.AppendPoll("r1", 2, 200, 0, nil)
	l.AppendPoll("r1", 3, 300, 5, []core.Task{1, 2, 3})
	l.AppendReclaim("r1", 4, 400)
	l.AppendExpire("r1", 5, 500)
	l.AppendSwept("r1", 6, 600)
	if err := l.Commit(); err != nil {
		f.Fatalf("commit: %v", err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, segmentName(l.Gen())))
	if err != nil {
		f.Fatalf("read segment: %v", err)
	}
	l.Close()
	f.Add(seg)
	f.Add(seg[:len(seg)-5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	mangled := append([]byte(nil), seg...)
	mangled[len(mangled)/2] ^= 0x80
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, b []byte) {
		var muts []core.Mutation
		consumed, err := DecodeFrames(b, func(m core.Mutation) error {
			muts = append(muts, m)
			return nil
		})
		if consumed < 0 || consumed > len(b) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(b))
		}
		if err != nil {
			// A CRC-valid frame that does not decode: possible for
			// adversarial input that happens to checksum correctly; the
			// decoder reported it instead of panicking, which is the
			// contract.
			return
		}
		// Everything consumed must re-encode to the same bytes via a
		// fresh journal — decode is the inverse of append.
		dir := t.TempDir()
		nl, err := Open(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer nl.Close()
		for _, m := range muts {
			switch m.Op {
			case core.MutCreate:
				nl.AppendCreate(m.Run, m.Seq, m.TimeNs, m.Payload)
			case core.MutPoll:
				nl.AppendPoll(m.Run, m.Seq, m.TimeNs, m.Worker, m.Tasks)
			case core.MutReclaim:
				nl.AppendReclaim(m.Run, m.Seq, m.TimeNs)
			case core.MutExpire:
				nl.AppendExpire(m.Run, m.Seq, m.TimeNs)
			case core.MutSwept:
				nl.AppendSwept(m.Run, m.Seq, m.TimeNs)
			default:
				t.Fatalf("decoded unknown op %v", m.Op)
			}
		}
		if err := nl.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		re, err := os.ReadFile(filepath.Join(dir, segmentName(nl.Gen())))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(re, b[:consumed]) {
			// Lossless only when every decoded field survives re-append:
			// poll records with Worker < 0 or non-poll records carrying
			// tasks cannot come from this writer, so consumed bytes that
			// differ here mean the decoder accepted something the writer
			// cannot produce — allowed, as long as the mutation content
			// matches when re-decoded.
			var reMuts []core.Mutation
			if _, err := DecodeFrames(re, func(m core.Mutation) error {
				reMuts = append(reMuts, m)
				return nil
			}); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if len(reMuts) != len(muts) {
				t.Fatalf("re-encode kept %d of %d mutations", len(reMuts), len(muts))
			}
		}
	})
}

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the snapshot decoder:
// it must never panic, and anything it accepts must re-encode
// bit-identically.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(AppendSnapshot(nil, goldenSnapshot()))
	f.Add(AppendSnapshot(nil, &RunSnapshot{ID: "r0", Mutations: 1, Request: []byte(`{}`)}))
	f.Add([]byte{})
	f.Add([]byte("HSN1 not a snapshot"))
	damaged := AppendSnapshot(nil, goldenSnapshot())
	damaged[len(damaged)/3] ^= 0x01
	f.Add(damaged)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			return
		}
		re := AppendSnapshot(nil, s)
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted snapshot is not canonical:\n in  %x\n out %x", b, re)
		}
	})
}
