// Package durable persists the mutation stream of internal/service's
// masters: a length-prefixed, CRC-framed write-ahead journal of
// core.Mutation records plus per-run snapshots that truncate it.
//
// The durability model is process-crash (SIGKILL): every accepted poll
// is framed into a group-commit buffer under the host mutex and
// written out with one write(2) per poll batch before the response is
// sent, so the kernel page cache — which survives the death of the
// process — always holds every acknowledged mutation. fsync is
// amortized: the journal syncs every SyncEvery bytes (and on rotation
// and close), bounding what a *machine* crash can lose without putting
// a disk flush on every poll.
//
// The on-disk layout of a journal directory is
//
//	journal-<gen>.log   framed mutation records, ascending generations
//	snap-<id>-<seq>.snap  one run's state after its first <seq> mutations
//
// Each checkpoint rotates to a fresh generation, snapshots every live
// run, then deletes the older generations and superseded snapshots.
// Snapshots are versioned and written atomically (tmp + fsync +
// rename), so a crash mid-checkpoint leaves the previous snapshot and
// a longer journal suffix — recovery picks the highest valid snapshot
// per run and replays every record with a per-run sequence number
// above its watermark. Torn or corrupt journal tails are detected by
// CRC: replay ends the damaged generation at its last valid frame and
// continues with the next generation (acknowledged records appended
// after an earlier crash live there); appends after recovery go to a
// fresh generation, never into a damaged file.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hetsched/internal/core"
)

// Journal frame format:
//
//	frame := len(u32) crc(u32) payload
//
// len is the payload length, crc is CRC-32C (Castagnoli) over the
// payload. The payload is one core.Mutation wire record.
const frameHeader = 8

// maxFrame bounds the payload length a reader will accept; anything
// larger is treated as tail damage.
const maxFrame = 1 << 26

// DefaultSyncEvery is the fsync amortization granularity: the journal
// fsyncs after this many bytes of committed frames. The window bounds
// what a machine crash (not a process kill — write(2) covers that per
// poll) can lose; 4MB of ~55-byte poll frames keeps the amortized
// fsync tax under ~50ns/poll even on filesystems where a sync costs
// milliseconds.
const DefaultSyncEvery = 1 << 22

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is one journal directory opened for appending. Appends are
// buffered (group commit); Commit writes the buffered frames with one
// write(2) and Sync additionally forces them to disk. All methods are
// safe for concurrent use.
type Log struct {
	dir string

	mu        sync.Mutex
	f         *os.File
	gen       uint64
	buf       []byte
	sinceSync int
	syncEvery int
	closed    bool
	// damaged is set when a write(2) failed after landing some bytes:
	// the generation now ends in a torn frame, and appending after it
	// would hide every later frame from replay (which stops a
	// generation at the first damage). The next commit seals the
	// damaged generation and retries into a fresh one.
	damaged bool
}

// Open opens (creating if needed) the journal directory and starts a
// fresh generation for appends. Records from earlier generations are
// readable via Replay until a Checkpoint prunes them; Open itself
// never modifies existing files, so a failed recovery can always be
// retried against intact data.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	gens, _, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(gens); n > 0 {
		next = gens[n-1] + 1
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(next)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &Log{
		dir:       dir,
		f:         f,
		gen:       next,
		buf:       make([]byte, 0, 1<<16),
		syncEvery: DefaultSyncEvery,
	}, nil
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Gen returns the generation currently open for appends.
func (l *Log) Gen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// AppendPoll buffers one accepted-poll mutation. Allocation-free once
// the commit buffer has grown to its working size.
func (l *Log) AppendPoll(run string, seq uint64, timeNs int64, worker int32, completed []core.Task) {
	l.mu.Lock()
	l.appendLocked(core.MutPoll, run, seq, timeNs, worker, completed, nil)
	l.mu.Unlock()
}

// AppendReclaim buffers one lease-reclamation mutation.
func (l *Log) AppendReclaim(run string, seq uint64, timeNs int64) {
	l.mu.Lock()
	l.appendLocked(core.MutReclaim, run, seq, timeNs, -1, nil, nil)
	l.mu.Unlock()
}

// AppendCreate buffers a run-creation mutation carrying the canonical
// resolved creation record.
func (l *Log) AppendCreate(run string, seq uint64, timeNs int64, payload []byte) {
	l.mu.Lock()
	l.appendLocked(core.MutCreate, run, seq, timeNs, -1, nil, payload)
	l.mu.Unlock()
}

// AppendExpire buffers a run-expiry mutation.
func (l *Log) AppendExpire(run string, seq uint64, timeNs int64) {
	l.mu.Lock()
	l.appendLocked(core.MutExpire, run, seq, timeNs, -1, nil, nil)
	l.mu.Unlock()
}

// AppendSwept buffers a registry-sweep mutation.
func (l *Log) AppendSwept(run string, seq uint64, timeNs int64) {
	l.mu.Lock()
	l.appendLocked(core.MutSwept, run, seq, timeNs, -1, nil, nil)
	l.mu.Unlock()
}

func (l *Log) appendLocked(op core.MutationOp, run string, seq uint64, timeNs int64, worker int32, tasks []core.Task, payload []byte) {
	at := len(l.buf)
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	l.buf = core.AppendMutation(l.buf, op, run, seq, timeNs, worker, tasks, payload)
	body := l.buf[at+frameHeader:]
	binary.LittleEndian.PutUint32(l.buf[at:], uint32(len(body)))
	binary.LittleEndian.PutUint32(l.buf[at+4:], crc32.Checksum(body, crcTable))
}

// Commit writes every buffered frame with one write(2), fsyncing when
// the amortization budget is used up. A poll is acknowledged only
// after its Commit returns, so acknowledged mutations survive a
// process kill.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if l.closed {
		return fmt.Errorf("durable: journal closed")
	}
	if l.damaged {
		// The previous commit's write(2) failed partway, so the current
		// generation ends in a torn frame. Rewriting the buffer after
		// those partial bytes would corrupt the file mid-generation
		// (replay stops a generation at the first damage, dropping every
		// frame after it), so seal the damaged generation and retry the
		// still-buffered frames in a fresh one — replay skips a torn
		// tail and continues with the next generation.
		if err := l.reopenLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(l.buf)
	if err != nil {
		if n > 0 {
			l.damaged = true
		}
		return fmt.Errorf("durable: %w", err)
	}
	l.buf = l.buf[:0]
	l.sinceSync += n
	if l.sinceSync >= l.syncEvery {
		l.sinceSync = 0
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("durable: %w", err)
		}
	}
	return nil
}

// Sync commits and forces the current generation to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.commitLocked(); err != nil {
		return err
	}
	l.sinceSync = 0
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Close syncs and closes the journal. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.commitLocked()
	if serr := l.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("durable: %w", serr)
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("durable: %w", cerr)
	}
	l.closed = true
	return err
}

// Rotate syncs and seals the current generation and opens the next
// one; it returns the sealed generation. Checkpointing snapshots every
// live run after rotating, so the sealed generations are fully covered
// by the snapshots' watermarks and can be pruned.
func (l *Log) Rotate() (sealed uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("durable: journal closed")
	}
	if err := l.commitLocked(); err != nil {
		return 0, err
	}
	l.sinceSync = 0
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	sealed = l.gen
	l.gen++
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.gen)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		l.closed = true
		return 0, fmt.Errorf("durable: %w", err)
	}
	l.f = f
	l.damaged = false
	return sealed, nil
}

// reopenLocked abandons the current (damaged) generation and opens the
// next one for appends. The damaged file is left on disk with its torn
// tail; its valid prefix still replays, and the next checkpoint prunes
// it like any other sealed generation.
func (l *Log) reopenLocked() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.gen+1)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	l.f.Close() // best effort: the generation is already damaged
	l.f = f
	l.gen++
	l.sinceSync = 0
	l.damaged = false
	return nil
}

// Prune deletes journal generations at or below throughGen and every
// snapshot that is not the keeper for its run (keep maps run id to the
// watermark of the snapshot to retain). Leftover tmp files from
// interrupted snapshot writes are removed too.
func (l *Log) Prune(throughGen uint64, keep map[string]uint64) error {
	gens, snaps, err := scanDir(l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("durable: %w", err)
		}
	}
	for _, g := range gens {
		if g <= throughGen {
			note(os.Remove(filepath.Join(l.dir, segmentName(g))))
		}
	}
	for _, sf := range snaps {
		if want, ok := keep[sf.id]; !ok || sf.seq != want {
			note(os.Remove(filepath.Join(l.dir, sf.name)))
		}
	}
	ents, err := os.ReadDir(l.dir)
	note(err)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			note(os.Remove(filepath.Join(l.dir, e.Name())))
		}
	}
	return firstErr
}

// Replay streams every decodable mutation from the generations sealed
// before the one currently open for appends, in journal order. A torn
// or corrupt frame ends its own generation at the last valid frame (the
// write a crash or write error interrupted — everything after it in
// that generation is unacknowledged by construction) and replay
// continues with the next generation: a process that crashed on a torn
// gen N and then appended acknowledged mutations to gen N+1 must not
// have N+1 silently dropped on the next restart. Genuine mid-file loss
// of acknowledged records is not silently absorbed — the consumer's
// per-run sequence check (service.Recover) turns the resulting hole
// into a hard recovery error. A CRC-valid frame that fails to decode is
// reported as an error, as is any error returned by fn, which aborts
// the replay.
func (l *Log) Replay(fn func(core.Mutation) error) error {
	l.mu.Lock()
	cur := l.gen
	dir := l.dir
	l.mu.Unlock()
	gens, _, err := scanDir(dir)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if g >= cur {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, segmentName(g)))
		if err != nil {
			return fmt.Errorf("durable: %w", err)
		}
		// A torn tail (consumed < len(data)) ends this generation at its
		// last valid frame; later generations still replay — see the
		// contract above.
		if _, err := DecodeFrames(data, fn); err != nil {
			return err
		}
	}
	return nil
}

// DecodeFrames iterates the journal frames in b, invoking fn for each
// decoded mutation, and returns how many bytes of b formed valid
// frames. It is total on arbitrary bytes: damage — a truncated header,
// an insane length, a CRC mismatch — terminates the iteration at the
// last valid frame without error and without panicking. A frame whose
// CRC matches but whose payload does not decode is a writer bug, not
// tail damage, and is returned as an error.
func DecodeFrames(b []byte, fn func(core.Mutation) error) (consumed int, err error) {
	for len(b)-consumed >= frameHeader {
		n := int(binary.LittleEndian.Uint32(b[consumed:]))
		if n <= 0 || n > maxFrame || len(b)-consumed-frameHeader < n {
			return consumed, nil
		}
		want := binary.LittleEndian.Uint32(b[consumed+4:])
		body := b[consumed+frameHeader : consumed+frameHeader+n]
		if crc32.Checksum(body, crcTable) != want {
			return consumed, nil
		}
		m, err := core.DecodeMutation(body)
		if err != nil {
			return consumed, fmt.Errorf("durable: frame at offset %d: %w", consumed, err)
		}
		consumed += frameHeader + n
		if fn != nil {
			if err := fn(m); err != nil {
				return consumed, err
			}
		}
	}
	return consumed, nil
}

// --- Directory layout -------------------------------------------------

const (
	segPrefix  = "journal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpPrefix  = ".tmp-"
)

func segmentName(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, gen, segSuffix)
}

func snapshotName(id string, seq uint64) string {
	return fmt.Sprintf("%s%s-%016x%s", snapPrefix, id, seq, snapSuffix)
}

type snapFile struct {
	name string
	id   string
	seq  uint64
}

// scanDir lists the journal generations (ascending) and snapshot files
// in dir, ignoring anything it does not recognize.
func scanDir(dir string) (gens []uint64, snaps []snapFile, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
			if err == nil {
				gens = append(gens, g)
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			base := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
			dash := strings.LastIndexByte(base, '-')
			if dash <= 0 {
				continue
			}
			seq, err := strconv.ParseUint(base[dash+1:], 16, 64)
			if err != nil {
				continue
			}
			snaps = append(snaps, snapFile{name: name, id: base[:dash], seq: seq})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, snaps, nil
}
