package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"hetsched/internal/core"
)

// Transfer stream format: a self-contained encoding of one run's full
// durable state, built to be shipped between federated hosts during a
// live migration or scavenged from a dead host's journal directory.
//
//	transfer := magic "HTX1"
//	            flag(u8)                 1 = snapshot present, 0 = absent
//	            [snapLen(u32) snapshot]  when flag == 1 (HSN1 encoding, own CRC)
//	            frame*                   journal frames: len(u32) crc(u32) mutation
//
// The frames carry the run's journal tail: every mutation with a
// per-run sequence number above the snapshot's watermark, contiguous
// and in order. A snapshot-less stream (flag 0) starts at the
// beginning of the run's life: its first frame must be the MutCreate
// record with sequence 1. Either way the stream alone reconstructs the
// run — no side channel, no access to the source's journal directory.
//
// Unlike the journal reader (DecodeFrames), which treats a torn tail
// as the expected residue of a crash, a transfer stream has no excuse
// for damage: DecodeTransfer is total on arbitrary bytes and rejects
// truncation, corruption, trailing bytes and any structural
// inconsistency with an error. The encoding is canonical, so
// AppendTransfer(nil, DecodeTransfer(b)) == b for any accepted b
// (FuzzTransferDecode pins both properties).
var transferMagic = [4]byte{'H', 'T', 'X', '1'}

// AppendTransfer appends the transfer encoding of (snap, tail) to dst.
// snap may be nil for a from-the-beginning stream, in which case tail
// must start with the run's MutCreate record.
func AppendTransfer(dst []byte, snap *RunSnapshot, tail []core.Mutation) []byte {
	dst = append(dst, transferMagic[:]...)
	if snap != nil {
		dst = append(dst, 1)
		at := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		dst = AppendSnapshot(dst, snap)
		binary.LittleEndian.PutUint32(dst[at:], uint32(len(dst)-at-4))
	} else {
		dst = append(dst, 0)
	}
	for _, m := range tail {
		at := len(dst)
		dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
		dst = core.AppendMutation(dst, m.Op, m.Run, m.Seq, m.TimeNs, m.Worker, m.Tasks, m.Payload)
		body := dst[at+frameHeader:]
		binary.LittleEndian.PutUint32(dst[at:], uint32(len(body)))
		binary.LittleEndian.PutUint32(dst[at+4:], crc32.Checksum(body, crcTable))
	}
	return dst
}

// DecodeTransfer parses a transfer stream. It is total on arbitrary
// bytes: any damage — bad magic, a non-canonical flag, a truncated or
// corrupt snapshot, a torn frame, a CRC mismatch, trailing bytes, an
// id mismatch between snapshot and tail, or a sequence gap — fails
// with an error, never a panic. On success the tail mutations are
// contiguous (watermark+1, watermark+2, …) and all belong to the
// stream's single run.
func DecodeTransfer(b []byte) (*RunSnapshot, []core.Mutation, error) {
	if len(b) < len(transferMagic)+1 || string(b[:4]) != string(transferMagic[:]) {
		return nil, nil, fmt.Errorf("durable: not a transfer stream")
	}
	i := len(transferMagic)
	var snap *RunSnapshot
	var id string
	var watermark uint64
	switch b[i] {
	case 0:
		i++
	case 1:
		i++
		if len(b)-i < 4 {
			return nil, nil, fmt.Errorf("durable: transfer snapshot length truncated")
		}
		n := int(binary.LittleEndian.Uint32(b[i:]))
		i += 4
		if n > len(b)-i {
			return nil, nil, fmt.Errorf("durable: transfer snapshot truncated")
		}
		s, err := DecodeSnapshot(b[i : i+n])
		if err != nil {
			return nil, nil, err
		}
		i += n
		snap, id, watermark = s, s.ID, s.Mutations
	default:
		return nil, nil, fmt.Errorf("durable: transfer has non-canonical snapshot flag %d", b[i])
	}
	var tail []core.Mutation
	for i < len(b) {
		if len(b)-i < frameHeader {
			return nil, nil, fmt.Errorf("durable: transfer frame header truncated")
		}
		n := int(binary.LittleEndian.Uint32(b[i:]))
		if n <= 0 || n > maxFrame || len(b)-i-frameHeader < n {
			return nil, nil, fmt.Errorf("durable: transfer frame truncated")
		}
		want := binary.LittleEndian.Uint32(b[i+4:])
		body := b[i+frameHeader : i+frameHeader+n]
		if crc32.Checksum(body, crcTable) != want {
			return nil, nil, fmt.Errorf("durable: transfer frame CRC mismatch at offset %d", i)
		}
		m, err := core.DecodeMutation(body)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: transfer frame at offset %d: %w", i, err)
		}
		i += frameHeader + n
		if snap == nil && len(tail) == 0 {
			if m.Op != core.MutCreate || m.Seq != 1 {
				return nil, nil, fmt.Errorf("durable: snapshot-less transfer must start with create seq 1, got op %d seq %d", m.Op, m.Seq)
			}
			id = m.Run
		}
		if m.Run != id {
			return nil, nil, fmt.Errorf("durable: transfer mixes runs %q and %q", id, m.Run)
		}
		if m.Seq != watermark+uint64(len(tail))+1 {
			return nil, nil, fmt.Errorf("durable: transfer sequence gap: want %d, got %d", watermark+uint64(len(tail))+1, m.Seq)
		}
		tail = append(tail, m)
	}
	if snap == nil && len(tail) == 0 {
		return nil, nil, fmt.Errorf("durable: empty transfer stream")
	}
	return snap, tail, nil
}

// TransferRuns lists the run ids present in a journal directory —
// every run with a snapshot or a MutCreate record and no MutSwept
// after it. It reads the directory cold (no open Log needed), so a
// surviving host can enumerate what a dead peer's journal still owes.
func TransferRuns(dir string) ([]string, error) {
	gens, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	present := make(map[string]bool)
	for _, sf := range snaps {
		present[sf.id] = true
	}
	for _, g := range gens {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(g)))
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		if _, err := DecodeFrames(data, func(m core.Mutation) error {
			switch m.Op {
			case core.MutCreate:
				present[m.Run] = true
			case core.MutSwept:
				delete(present, m.Run)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	ids := make([]string, 0, len(present))
	for id := range present {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// ExtractTransfer scavenges one run's transfer stream from a journal
// directory without an open Log: the highest-watermark valid snapshot
// (if any) plus every journal record above it, across all generations
// in order. This is the death path — the new ring owner of a crashed
// host's run rebuilds the stream the dead process can no longer serve.
// Duplicate records (the residue of a damaged-generation retry) are
// skipped at the sequence watermark exactly as recovery skips them; a
// genuine gap in acknowledged records is a hard error. A MutSwept
// record means the run already left this directory (swept or migrated
// away) and extraction fails.
func ExtractTransfer(dir, id string) ([]byte, error) {
	gens, snapFiles, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	var snap *RunSnapshot
	for _, sf := range snapFiles {
		if sf.id != id || (snap != nil && snap.Mutations >= sf.seq) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, sf.name))
		if err != nil {
			continue
		}
		s, err := DecodeSnapshot(data)
		if err != nil || s.ID != id {
			continue
		}
		snap = s
	}
	var watermark uint64
	if snap != nil {
		watermark = snap.Mutations
	}
	var tail []core.Mutation
	seq := watermark
	created := snap != nil
	swept := false
	for _, g := range gens {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(g)))
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		if _, err := DecodeFrames(data, func(m core.Mutation) error {
			if m.Run != id || swept {
				return nil
			}
			if m.Op == core.MutSwept {
				swept = true
				return nil
			}
			if m.Op == core.MutCreate {
				created = true
			}
			if m.Seq <= seq {
				return nil // duplicate from a damaged-generation retry
			}
			if m.Seq != seq+1 {
				return fmt.Errorf("durable: journal gap for run %s: have %d, next record is %d", id, seq, m.Seq)
			}
			seq = m.Seq
			tail = append(tail, m)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if swept {
		return nil, fmt.Errorf("durable: run %s was swept or migrated away from %s", id, dir)
	}
	if !created {
		return nil, fmt.Errorf("durable: run %s not found in %s", id, dir)
	}
	return AppendTransfer(nil, snap, tail), nil
}
