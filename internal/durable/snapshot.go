package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"hetsched/internal/trace"
)

// WorkerCounters is one worker's per-run counters as persisted by a
// snapshot; the worker index is the slice position.
type WorkerCounters struct {
	Requests, Tasks, Blocks, Reclaimed int64
}

// Grant is one outstanding lease: task granted to Worker, expiring at
// ExpiryNs (0 when leases are disabled).
type Grant struct {
	Task     int64
	ExpiryNs int64
	Worker   int32
}

// Stain is one reclaimed-ownership mark: Worker lost Task to a lease
// reclaim and its late completion must draw a deterministic 409.
type Stain struct {
	Task   int64
	Worker int32
}

// RunSnapshot is the full persisted state of one run: everything the
// service needs to rebuild its Host — and the driver inside it — to
// the exact instant the snapshot was cut. Mutations is the per-run
// sequence watermark: recovery restores the snapshot and then replays
// only journal records with a higher sequence number.
//
// The driver itself is persisted as DriverOps, an append-only op log
// of the successful driver calls (grant steps, completion reports,
// reclaim returns) in execution order. Drivers are deterministic
// single-goroutine state machines seeded from the creation record, so
// re-executing the op log against a freshly built driver reproduces
// its exact internal state, RNG included — no per-scheduler
// serialization needed.
type RunSnapshot struct {
	ID        string
	Mutations uint64
	Expired   bool
	Request   []byte // canonical creation record (same payload as MutCreate)

	CreatedNs  int64
	StartNs    int64
	LastNs     int64
	LastPollNs int64

	Assigned, Completed, Reclaimed int64
	Blocks, Requests, Polls        int64

	BatchN                                 int64
	BatchMean, BatchM2, BatchMin, BatchMax float64
	BatchHist                              []int64

	Workers  []WorkerCounters
	Segments []trace.Segment
	Open     []int32 // per-worker open trace segment index, -1 when closed

	Grants []Grant
	Stains []Stain

	DriverOps []byte
}

// Snapshot file format: magic, fixed-width little-endian fields in
// struct order (u16 length-prefixed ID, u32 length-prefixed slices),
// and a trailing CRC-32C over everything before it. The encoding is
// canonical — every field has exactly one representation — so
// encode(decode(b)) == b for any accepted b (FuzzSnapshotRoundTrip
// pins this).
var snapMagic = [4]byte{'H', 'S', 'N', '1'}

// maxSnapshotSlice bounds every slice length a decoder will accept.
const maxSnapshotSlice = 1 << 26

// AppendSnapshot appends the encoding of s to dst. The trailing CRC
// covers the snapshot's own bytes only, so the encoding is position
// independent — it may be embedded mid-stream (transfer streams do).
func AppendSnapshot(dst []byte, s *RunSnapshot) []byte {
	if len(s.ID) > 1<<16-1 {
		panic("durable: run id exceeds snapshot format")
	}
	start := len(dst)
	dst = append(dst, snapMagic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.ID)))
	dst = append(dst, s.ID...)
	dst = binary.LittleEndian.AppendUint64(dst, s.Mutations)
	if s.Expired {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendBytes(dst, s.Request)
	for _, v := range [...]int64{
		s.CreatedNs, s.StartNs, s.LastNs, s.LastPollNs,
		s.Assigned, s.Completed, s.Reclaimed, s.Blocks, s.Requests, s.Polls,
		s.BatchN,
	} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range [...]float64{s.BatchMean, s.BatchM2, s.BatchMin, s.BatchMax} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.BatchHist)))
	for _, v := range s.BatchHist {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Workers)))
	for _, w := range s.Workers {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(w.Requests))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(w.Tasks))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(w.Blocks))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(w.Reclaimed))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Segments)))
	for _, seg := range s.Segments {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(seg.Proc)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(seg.Start))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(seg.End))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(seg.Tasks)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(seg.Blocks)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Open)))
	for _, v := range s.Open {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Grants)))
	for _, g := range s.Grants {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(g.Task))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(g.ExpiryNs))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(g.Worker))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Stains)))
	for _, st := range s.Stains {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(st.Task))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(st.Worker))
	}
	dst = appendBytes(dst, s.DriverOps)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable))
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// snapReader pulls fixed-width fields off a snapshot body with
// saturating error state, keeping every accessor total.
type snapReader struct {
	data []byte
	i    int
	bad  bool
}

func (r *snapReader) u16() uint16 {
	if r.bad || len(r.data)-r.i < 2 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.i:])
	r.i += 2
	return v
}

func (r *snapReader) u32() uint32 {
	if r.bad || len(r.data)-r.i < 4 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.i:])
	r.i += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if r.bad || len(r.data)-r.i < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.i:])
	r.i += 8
	return v
}

func (r *snapReader) i64() int64   { return int64(r.u64()) }
func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *snapReader) sliceLen() int {
	n := int(r.u32())
	if n > maxSnapshotSlice || (!r.bad && n > len(r.data)-r.i) {
		r.bad = true
		return 0
	}
	return n
}

func (r *snapReader) bytes(n int) []byte {
	if r.bad || len(r.data)-r.i < n {
		r.bad = true
		return nil
	}
	b := r.data[r.i : r.i+n]
	r.i += n
	return b
}

// DecodeSnapshot parses an encoded snapshot. It is total on arbitrary
// bytes and rejects any damage: bad magic, truncation, trailing bytes,
// non-canonical booleans and CRC mismatches all fail with an error.
func DecodeSnapshot(b []byte) (*RunSnapshot, error) {
	if len(b) < len(snapMagic)+4 || string(b[:4]) != string(snapMagic[:]) {
		return nil, fmt.Errorf("durable: not a snapshot")
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("durable: snapshot CRC mismatch")
	}
	r := snapReader{data: body, i: 4}
	s := &RunSnapshot{}
	s.ID = string(r.bytes(int(r.u16())))
	s.Mutations = r.u64()
	switch flag := r.bytes(1); {
	case r.bad:
	case flag[0] == 1:
		s.Expired = true
	case flag[0] != 0:
		return nil, fmt.Errorf("durable: snapshot has non-canonical bool %d", flag[0])
	}
	if n := r.sliceLen(); n > 0 {
		s.Request = append([]byte(nil), r.bytes(n)...)
	}
	for _, p := range [...]*int64{
		&s.CreatedNs, &s.StartNs, &s.LastNs, &s.LastPollNs,
		&s.Assigned, &s.Completed, &s.Reclaimed, &s.Blocks, &s.Requests, &s.Polls,
		&s.BatchN,
	} {
		*p = r.i64()
	}
	for _, p := range [...]*float64{&s.BatchMean, &s.BatchM2, &s.BatchMin, &s.BatchMax} {
		*p = r.f64()
	}
	if n := r.sliceLen(); n > 0 && !r.bad {
		s.BatchHist = make([]int64, n)
		for i := range s.BatchHist {
			s.BatchHist[i] = r.i64()
		}
	}
	if n := r.sliceLen(); n > 0 && !r.bad {
		s.Workers = make([]WorkerCounters, n)
		for i := range s.Workers {
			s.Workers[i] = WorkerCounters{
				Requests:  r.i64(),
				Tasks:     r.i64(),
				Blocks:    r.i64(),
				Reclaimed: r.i64(),
			}
		}
	}
	if n := r.sliceLen(); n > 0 && !r.bad {
		s.Segments = make([]trace.Segment, n)
		for i := range s.Segments {
			s.Segments[i] = trace.Segment{
				Proc:   int(r.i64()),
				Start:  r.f64(),
				End:    r.f64(),
				Tasks:  int(r.i64()),
				Blocks: int(r.i64()),
			}
		}
	}
	if n := r.sliceLen(); n > 0 && !r.bad {
		s.Open = make([]int32, n)
		for i := range s.Open {
			s.Open[i] = int32(r.u32())
		}
	}
	if n := r.sliceLen(); n > 0 && !r.bad {
		s.Grants = make([]Grant, n)
		for i := range s.Grants {
			s.Grants[i] = Grant{
				Task:     r.i64(),
				ExpiryNs: r.i64(),
				Worker:   int32(r.u32()),
			}
		}
	}
	if n := r.sliceLen(); n > 0 && !r.bad {
		s.Stains = make([]Stain, n)
		for i := range s.Stains {
			s.Stains[i] = Stain{Task: r.i64(), Worker: int32(r.u32())}
		}
	}
	if n := r.sliceLen(); n > 0 {
		s.DriverOps = append([]byte(nil), r.bytes(n)...)
	}
	if r.bad {
		return nil, fmt.Errorf("durable: snapshot truncated")
	}
	if r.i != len(body) {
		return nil, fmt.Errorf("durable: %d trailing bytes in snapshot", len(body)-r.i)
	}
	return s, nil
}

// WriteSnapshot atomically persists s into the journal directory as
// snap-<id>-<mutations>.snap: encode, write to a tmp file, fsync,
// rename. A crash at any point leaves either the complete new file or
// the previous state — never a half-written snapshot under the final
// name (and a half-written tmp fails its CRC anyway).
func (l *Log) WriteSnapshot(s *RunSnapshot) error {
	data := AppendSnapshot(nil, s)
	final := filepath.Join(l.dir, snapshotName(s.ID, s.Mutations))
	tmp, err := os.CreateTemp(l.dir, tmpPrefix+"snap-*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// LoadSnapshots reads every snapshot in the journal directory and
// returns the highest-watermark valid snapshot per run. Damaged files
// — the residue of a crash mid-checkpoint — are skipped: the older
// snapshot plus the longer journal suffix wins.
func (l *Log) LoadSnapshots() (map[string]*RunSnapshot, error) {
	_, snaps, err := scanDir(l.dir)
	if err != nil {
		return nil, err
	}
	best := make(map[string]*RunSnapshot)
	for _, sf := range snaps {
		if prev, ok := best[sf.id]; ok && prev.Mutations >= sf.seq {
			continue
		}
		data, err := os.ReadFile(filepath.Join(l.dir, sf.name))
		if err != nil {
			continue
		}
		s, err := DecodeSnapshot(data)
		if err != nil || s.ID != sf.id {
			continue
		}
		best[s.ID] = s
	}
	return best, nil
}
