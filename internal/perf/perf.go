// Package perf holds the repository's micro-benchmark bodies in plain
// (non-test) code so two drivers can share them: the go-test harness
// (bench_test.go wraps each body in a BenchmarkXxx function for
// `go test -bench`) and cmd/benchjson, which runs them through
// testing.Benchmark and records the results as the repo's machine-
// readable perf baseline (BENCH_sim.json / BENCH_service.json).
//
// The scales mirror the paper's evaluation: n=100 outer-product and
// n=40 matrix instances on p=100 processors.
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"hetsched/internal/analysis"
	"hetsched/internal/cholesky"
	"hetsched/internal/cluster"
	"hetsched/internal/core"
	"hetsched/internal/durable"
	"hetsched/internal/events"
	"hetsched/internal/federation"
	"hetsched/internal/lu"
	"hetsched/internal/matmul"
	"hetsched/internal/outer"
	"hetsched/internal/qr"
	"hetsched/internal/rng"
	"hetsched/internal/service"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
)

// Benchmark is a named micro-benchmark body. Parallel marks bodies
// built on b.RunParallel: their effective parallelism is GOMAXPROCS,
// so a recorded row from a single-core container and one from a
// multi-core CI runner measure different contention regimes.
type Benchmark struct {
	Name     string
	F        func(*testing.B)
	Parallel bool
	// Hosts is the federated topology size the body drives (0 for the
	// single-host rows); cmd/benchjson records it per row so a baseline
	// from one topology is never compared against another.
	Hosts int
}

// Topology describes the benchmark's host layout for the JSON rows.
func (b Benchmark) Topology() string {
	if b.Hosts > 1 {
		return fmt.Sprintf("federated-%d", b.Hosts)
	}
	return "single"
}

// Parallelism returns the number of goroutines the benchmark drives
// concurrently under the current GOMAXPROCS: 1 for serial bodies,
// GOMAXPROCS for RunParallel bodies.
func (b Benchmark) Parallelism() int {
	if b.Parallel {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// SimBenchmarks are the simulator-path micro-benchmarks recorded in
// BENCH_sim.json, in a stable order.
var SimBenchmarks = []Benchmark{
	{Name: "SimRandomOuter", F: SimRandomOuter},
	{Name: "SimDynamicOuter", F: SimDynamicOuter},
	{Name: "SimTwoPhasesOuter", F: SimTwoPhasesOuter},
	{Name: "SimRandomMatrix", F: SimRandomMatrix},
	{Name: "SimDynamicMatrix", F: SimDynamicMatrix},
	{Name: "SimTwoPhasesMatrix", F: SimTwoPhasesMatrix},
	{Name: "SimBandwidthTwoPhases", F: SimBandwidthTwoPhases},
	{Name: "SimCholeskyLocality", F: SimCholeskyLocality},
	{Name: "SimLULocality", F: SimLULocality},
	{Name: "SimQRLocality", F: SimQRLocality},
	{Name: "OptimalBetaOuter100", F: OptimalBetaOuter100},
	{Name: "OptimalBetaMatrix100", F: OptimalBetaMatrix100},
}

// ServiceBenchmarks are the scheduler-as-a-service benchmarks recorded
// in BENCH_service.json.
var ServiceBenchmarks = []Benchmark{
	{Name: "ServiceHostNext", F: ServiceHostNext},
	{Name: "ServiceHostNextLease", F: ServiceHostNextLease},
	{Name: "ServiceHostNextJournal", F: ServiceHostNextJournal},
	{Name: "ServiceHostNextParallel", F: ServiceHostNextParallel, Parallel: true},
	{Name: "ServiceHostNextParallelEvents", F: ServiceHostNextParallelEvents, Parallel: true},
	{Name: "ServiceRouterNext", F: ServiceRouterNext, Hosts: 4},
	{Name: "ServiceMigrate25k", F: ServiceMigrate25k, Hosts: 2},
	{Name: "ClusterHost1k", F: ClusterHost1k},
	{Name: "ClusterHost10k", F: ClusterHost10k},
	{Name: "ClusterHost100k", F: ClusterHost100k},
	{Name: "ClusterHost1M", F: ClusterHost1M},
	{Name: "ClusterHostFederated4x25k", F: ClusterHostFederated4x25k, Hosts: 4},
}

// CIBenchmarks is the small poll-hot-path subset the CI workflow runs
// on every push and compares against the committed BENCH_ci.json
// baseline: the contended single-host row, the journaled poll row,
// the federated router row and the migration handoff row — the four
// numbers a perf regression on the poll or handoff path cannot hide
// from.
var CIBenchmarks = []Benchmark{
	{Name: "ServiceHostNextParallel", F: ServiceHostNextParallel, Parallel: true},
	{Name: "ServiceHostNextJournal", F: ServiceHostNextJournal},
	{Name: "ServiceRouterNext", F: ServiceRouterNext, Hosts: 4},
	{Name: "ServiceMigrate25k", F: ServiceMigrate25k, Hosts: 2},
}

// SimRandomOuter simulates RandomOuter at the paper's scale (n=100,
// p=100); one op is one full run.
func SimRandomOuter(b *testing.B) {
	const n, p = 100, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(outer.NewRandom(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

// SimDynamicOuter simulates DynamicOuter (n=100, p=100).
func SimDynamicOuter(b *testing.B) {
	const n, p = 100, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(outer.NewDynamic(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

// SimTwoPhasesOuter simulates DynamicOuter2Phases at the analysis β*
// (n=100, p=100).
func SimTwoPhasesOuter(b *testing.B) {
	const n, p = 100, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	beta, _ := analysis.OptimalBetaOuter(rs, n)
	thr := outer.ThresholdFromBeta(beta, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(outer.NewTwoPhases(n, p, thr, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

// SimRandomMatrix simulates RandomMatrix (n=40, p=100; 64,000 tasks).
func SimRandomMatrix(b *testing.B) {
	const n, p = 40, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(matmul.NewRandom(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

// SimDynamicMatrix simulates DynamicMatrix (n=40, p=100).
func SimDynamicMatrix(b *testing.B) {
	const n, p = 40, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(matmul.NewDynamic(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

// SimTwoPhasesMatrix simulates DynamicMatrix2Phases at β* (n=40,
// p=100).
func SimTwoPhasesMatrix(b *testing.B) {
	const n, p = 40, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	beta, _ := analysis.OptimalBetaMatrix(rs, n)
	thr := matmul.ThresholdFromBeta(beta, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(matmul.NewTwoPhases(n, p, thr, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

// SimBandwidthTwoPhases simulates the finite-bandwidth engine with the
// overlap experiment's tight settings (B=400, lookahead 2).
func SimBandwidthTwoPhases(b *testing.B) {
	const n, p = 100, 20
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	beta, _ := analysis.OptimalBetaOuter(rs, n)
	thr := outer.ThresholdFromBeta(beta, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunBandwidth(outer.NewTwoPhases(n, p, thr, rng.New(uint64(i))), speeds.NewFixed(s), 400, 2)
	}
}

// SimCholeskyLocality simulates the dependency-aware Cholesky kernel
// with the locality policy (24×24 tiles, p=16) through the generic
// dag engine and sim.RunDriver.
func SimCholeskyLocality(b *testing.B) {
	const n, p = 24, 16
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cholesky.Simulate(n, cholesky.LocalityReady, speeds.NewFixed(s), rng.New(uint64(i)))
	}
}

// SimLULocality simulates the dependency-aware LU kernel with the
// locality policy (20×20 tiles, p=16).
func SimLULocality(b *testing.B) {
	const n, p = 20, 16
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu.Simulate(n, lu.LocalityReady, speeds.NewFixed(s), rng.New(uint64(i)))
	}
}

// SimQRLocality simulates the dependency-aware QR kernel — the
// multi-output-task workload — with the locality policy (16×16 tiles,
// p=16).
func SimQRLocality(b *testing.B) {
	const n, p = 16, 16
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr.Simulate(n, qr.LocalityReady, speeds.NewFixed(s), rng.New(uint64(i)))
	}
}

// OptimalBetaOuter100 measures the outer-kernel β* solver on a 100-
// processor platform.
func OptimalBetaOuter100(b *testing.B) {
	root := rng.New(1)
	rs := speeds.Relative(speeds.UniformRange(100, 10, 100, root))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.OptimalBetaOuter(rs, 100)
	}
}

// OptimalBetaMatrix100 measures the matrix-kernel β* solver on a 100-
// processor platform.
func OptimalBetaMatrix100(b *testing.B) {
	root := rng.New(1)
	rs := speeds.Relative(speeds.UniformRange(100, 10, 100, root))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.OptimalBetaMatrix(rs, 40)
	}
}

// ServiceHostNext measures scheduler-as-a-service assignment
// throughput at the transport-free limit: P=64 workers round-robin
// against one mutex-guarded service.Host (outer 2phases, batch 4).
// One op is one granted master interaction, so assignments/sec is
// 1e9/(ns/op) — the baseline number future scaling PRs move.
func ServiceHostNext(b *testing.B) { serviceHostNextBench(b, 0, false) }

// ServiceHostNextLease is ServiceHostNext with a lease armed that
// never fires (healthy workers report well inside an hour): it prices
// the reclamation bookkeeping on the poll hot path — per-task deadline
// stamps, the next-expiry lower bound, and the per-poll expiry check —
// against the lease-free baseline row above.
func ServiceHostNextLease(b *testing.B) { serviceHostNextBench(b, time.Hour, false) }

// ServiceHostNextJournal is ServiceHostNextLease with the write-ahead
// journal armed: every granted poll frames its mutation record into
// the journal's group-commit buffer under the host mutex and issues
// one write(2) off the locks before the response is released. The
// delta to the lease row is the full durability tax on the poll hot
// path; the issue's acceptance budget keeps the whole bundle ≤ 2µs.
func ServiceHostNextJournal(b *testing.B) { serviceHostNextBench(b, time.Hour, true) }

// serviceHostNextBench is the shared drive loop behind the three rows:
// one harness, so their BENCH_service.json deltas isolate the lease
// and the journal.
func serviceHostNextBench(b *testing.B, lease time.Duration, journaled bool) {
	const n, p, batch = 128, 64, 4
	var jr *durable.Log
	if journaled {
		dir, err := os.MkdirTemp("", "hetsched-bench-journal-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if jr, err = durable.Open(dir); err != nil {
			b.Fatal(err)
		}
		defer jr.Close()
	}
	newHost := func(seed uint64) *service.Host {
		drv := core.NewSchedulerDriver(outer.NewTwoPhasesAuto(n, p, rng.New(seed).Split()))
		h := service.NewHost(drv, batch, lease)
		if jr != nil {
			h.AttachJournal(jr, fmt.Sprintf("bench-%d", seed))
		}
		return h
	}
	seed := uint64(1)
	h := newHost(seed)
	pending := make([][]core.Task, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := i % p
		a, status, err := h.Next(w, pending[w])
		if err != nil {
			b.Fatal(err)
		}
		pending[w] = a.Tasks
		if status == service.StatusDone {
			b.StopTimer()
			seed++
			h = newHost(seed)
			pending = make([][]core.Task, p)
			b.StartTimer()
		}
	}
}

// ClusterHost1k prices Host throughput under a 1000-worker virtual
// fleet: one op is one complete virtual-time cluster scenario — a
// heterogeneous outer run (n=64, 4096 tasks, batch 4, leases armed)
// registered by a thundering herd of 1000 workers and drained through
// the real service.Host via internal/cluster's direct mode. ns/op ÷
// polls/op (reported) is the per-master-interaction cost at fleet
// scale, the number the 10k row stresses.
func ClusterHost1k(b *testing.B) { clusterHostBench(b, 64, 1000) }

// ClusterHost10k is the 10,000-worker variant (n=128, 16384 tasks):
// most of the herd parks in wait while the batch pipeline drains, so
// the row prices both the grant path and the registration stampede.
func ClusterHost10k(b *testing.B) { clusterHostBench(b, 128, 10000) }

// ClusterHost100k is the 100,000-worker variant (n=128, 16384 tasks):
// only ~4k of the herd ever win a grant, so the row is dominated by
// the registration stampede and the parked majority's wait polls —
// the regime the striped host and slab-recycled harness are built for.
func ClusterHost100k(b *testing.B) { clusterHostBench(b, 128, 100000) }

// ClusterHost1M is the million-worker stress row, promoted from the
// old TestHerd1MSmoke: one op is a full registration stampede and
// drain of a 1,000,000-worker fleet against a single host (n=64, 4096
// tasks — virtually the entire herd only ever parks and waits). The
// worker slab alone is ~100MB and an op takes tens of seconds, so the
// row skips itself under -short; record it via
// `go run ./cmd/benchjson -only service` (no -short) when refreshing
// BENCH_service.json.
func ClusterHost1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-worker fleet skipped under -short (~100MB slab, tens of seconds per op)")
	}
	clusterHostBench(b, 64, 1_000_000)
}

func clusterHostBench(b *testing.B, n, p int) {
	polls := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := cluster.Scenario{
			Name: "bench",
			Seed: uint64(i + 1),
			Runs: []cluster.RunSpec{{
				Kernel: service.KernelOuter, Strategy: "2phases", N: n, P: p,
				Seed: uint64(i + 1), Batch: 4, LeaseSeconds: 30,
				Speeds: cluster.SpeedSpec{Kind: cluster.Uniform},
			}},
		}
		res, err := cluster.Run(sc, cluster.Direct)
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Runs[0].Stats.Completed; got != n*n {
			b.Fatalf("scenario completed %d tasks, want %d", got, n*n)
		}
		polls += res.Polls
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(polls)/float64(b.N), "polls/op")
	}
}

// ServiceRouterNext prices the federation router's per-poll overhead
// against the ServiceHostNext baseline: four in-process schedd hosts
// behind a consistent-hash Router, one run per host, the poll loop
// going through Router.Lookup (ring hash + registry fetch) before the
// same Host.Next call the single-host row times. The delta to
// ServiceHostNext bundles the router tax proper (Lookup alone measures
// ~40ns: one FNV/mix64 hash, a binary search over 256 ring points, a
// sharded map read) with the cache cost of cycling four independent
// runs' scheduler state; the whole bundle sits well inside the ≤ 2µs
// acceptance budget.
func ServiceRouterNext(b *testing.B) {
	const n, p, batch, hosts = 128, 64, 4, 4
	names := federation.HostNames(hosts)
	targets := make([]federation.Target, hosts)
	servers := make([]*service.Server, hosts)
	for i := range servers {
		servers[i] = service.New(service.Options{GCInterval: -1})
		targets[i] = federation.Target{Name: names[i], Server: servers[i]}
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	rt, err := federation.NewRouter(targets, federation.Options{Epoch: 1})
	if err != nil {
		b.Fatal(err)
	}
	// create registers a pinned-id run through the router's own create
	// path, so placement is exactly what production traffic would get.
	create := func(id string, seed uint64) {
		q := service.CreateRunRequest{
			ID: id, Kernel: service.KernelOuter, Strategy: "2phases",
			N: n, P: p, Seed: seed, Batch: batch,
		}
		body, err := json.Marshal(q)
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/runs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			b.Fatalf("create %s: status %d: %s", id, rec.Code, rec.Body)
		}
	}
	const runs = hosts
	ids := make([]string, runs)
	gens := make([]uint64, runs)
	for ri := range ids {
		ids[ri] = fmt.Sprintf("bench-%d-0", ri)
		create(ids[ri], uint64(ri+1))
	}
	pending := make([][][]core.Task, runs)
	for ri := range pending {
		pending[ri] = make([][]core.Task, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ri := i % runs
		w := (i / runs) % p
		run, _, ok := rt.Lookup(ids[ri])
		if !ok {
			b.Fatalf("run %s vanished", ids[ri])
		}
		a, status, err := run.Host.Next(w, pending[ri][w])
		if err != nil {
			b.Fatal(err)
		}
		pending[ri][w] = a.Tasks
		if status == service.StatusDone {
			b.StopTimer()
			gens[ri]++
			ids[ri] = fmt.Sprintf("bench-%d-%d", ri, gens[ri])
			create(ids[ri], uint64(ri+1)+gens[ri]*uint64(runs))
			pending[ri] = make([][]core.Task, p)
			b.StartTimer()
		}
	}
}

// ClusterHostFederated4x25k prices the federated topology at fleet
// scale: one op is the complete Federated4x25k scenario — four schedd
// hosts, four runs placed by the consistent-hash ring, 100,000 total
// workers — drained through internal/cluster's federated direct mode
// with the full invariant surface collected. The delta to
// ClusterHost100k (same total fleet, one host) prices the federation
// layer end to end.
func ClusterHostFederated4x25k(b *testing.B) {
	polls := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := cluster.Federated4x25k(uint64(i + 1))
		res, err := cluster.Run(sc, cluster.Direct)
		if err != nil {
			b.Fatal(err)
		}
		for _, rr := range res.Runs {
			if rr.Stats.Completed != 96*96 {
				b.Fatalf("run %s completed %d tasks, want %d", rr.Spec.RunID, rr.Stats.Completed, 96*96)
			}
		}
		polls += res.Polls
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(polls)/float64(b.N), "polls/op")
	}
}

// ServiceHostNextParallel is the contended variant: 64 logical workers
// hammering the Host mutex from all procs.
func ServiceHostNextParallel(b *testing.B) { serviceHostNextParallelBench(b, false) }

// ServiceHostNextParallelEvents is the contended variant with the
// observability plane attached and idle (a live event stream, zero
// subscribers): its delta to ServiceHostNextParallel prices the
// publish hooks on the poll hot path — the issue's acceptance budget
// is ≤ 5% over the subscriber-free row.
func ServiceHostNextParallelEvents(b *testing.B) { serviceHostNextParallelBench(b, true) }

func serviceHostNextParallelBench(b *testing.B, withEvents bool) {
	const n, p, batch = 128, 64, 4
	var mu sync.Mutex
	var wseq int
	var h *service.Host
	reset := func(seed uint64) {
		h = service.NewHost(core.NewSchedulerDriver(outer.NewTwoPhasesAuto(n, p, rng.New(seed).Split())), batch, 0)
		if withEvents {
			// A fresh bus per run, as in production one stream is live per
			// run and swept streams are unreachable.
			h.AttachEvents(events.NewBus(0).Run("bench"))
		}
	}
	seed := uint64(1)
	reset(seed)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		w := wseq % p
		wseq++
		mu.Unlock()
		var pending []core.Task
		var lastHost *service.Host
		for pb.Next() {
			mu.Lock()
			host := h
			mu.Unlock()
			if host != lastHost { // fresh run: pending batches died with the old one
				pending, lastHost = nil, host
			}
			a, status, err := host.Next(w, pending)
			if err != nil {
				b.Error(err) // Fatal must not be called off the benchmark goroutine
				return
			}
			pending = a.Tasks
			if status == service.StatusDone {
				mu.Lock()
				if h == host { // first retiree swaps in a fresh run
					seed++
					reset(seed)
				}
				mu.Unlock()
				pending = nil
			}
		}
	})
}

// ServiceMigrate25k prices a live migration at fleet scale: one op is
// one complete snapshot-ship-replay handoff (BeginMigrate export →
// DecodeTransfer → apply()-replay import → commit) of a run whose
// worker slab holds 25,000 registered workers with leases armed,
// ping-ponged between two in-process schedd servers. ns/op is the
// ownership-transfer window a fleet sees per migrated run — the time
// during which that run's polls answer 409/410 instead of a grant —
// so 1e9/ns_per_op is "runs migrated per second" for the CI gate.
func ServiceMigrate25k(b *testing.B) {
	const n, p, batch = 128, 25000, 4
	srv := [2]*service.Server{
		service.New(service.Options{GCInterval: -1}),
		service.New(service.Options{GCInterval: -1}),
	}
	defer srv[0].Close()
	defer srv[1].Close()
	const id = "mig-bench"
	body, err := json.Marshal(service.CreateRunRequest{
		ID: id, Kernel: service.KernelOuter, Strategy: "2phases",
		N: n, P: p, Seed: 1, Batch: batch, LeaseSeconds: 3600,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/runs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	srv[0].ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		b.Fatalf("create: status %d: %s", rec.Code, rec.Body)
	}
	// Register the whole fleet: every worker polls once, so the
	// snapshot the migration ships carries the full 25k-entry worker
	// slab, the open trace segments and a live grant table.
	run, ok := srv[0].Registry().Get(id)
	if !ok {
		b.Fatal("run vanished after create")
	}
	for w := 0; w < p; w++ {
		if _, _, err := run.Host.Next(w, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv[i%2].MigrateTo(id, srv[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}
