package hetsched

// Benchmarks regenerating every figure of the paper (in quick mode so
// `go test -bench=.` stays tractable; run cmd/hpdc14 for full-scale
// regeneration) plus micro-benchmarks of the simulator and the
// schedulers at the paper's actual scales.

import (
	"sync"
	"testing"

	"hetsched/internal/analysis"
	"hetsched/internal/cholesky"
	"hetsched/internal/core"
	"hetsched/internal/experiments"
	"hetsched/internal/matmul"
	"hetsched/internal/outer"
	"hetsched/internal/rng"
	"hetsched/internal/service"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	exp, known := experiments.Registry[id]
	if !known {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		res := exp.Run(experiments.Config{Seed: uint64(i + 1), Quick: true, Reps: 1})
		if len(res.Series) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig1(b *testing.B)  { benchFigure(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchFigure(b, "fig2") }
func BenchmarkFig4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkSec36(b *testing.B) { benchFigure(b, "sec36") }

func BenchmarkAblationStatic(b *testing.B)     { benchFigure(b, "abl-static") }
func BenchmarkAblationPhase2(b *testing.B)     { benchFigure(b, "abl-phase2") }
func BenchmarkAblationODE(b *testing.B)        { benchFigure(b, "abl-ode") }
func BenchmarkAblationRobust(b *testing.B)     { benchFigure(b, "abl-robust") }
func BenchmarkAblationCholesky(b *testing.B)   { benchFigure(b, "abl-cholesky") }
func BenchmarkAblationMapReduce(b *testing.B)  { benchFigure(b, "abl-mapreduce") }
func BenchmarkAblationOverlap(b *testing.B)    { benchFigure(b, "abl-overlap") }
func BenchmarkAblationODEMatrix(b *testing.B)  { benchFigure(b, "abl-ode-matrix") }
func BenchmarkAblationPerProc(b *testing.B)    { benchFigure(b, "abl-perproc") }
func BenchmarkAblationSwitchTime(b *testing.B) { benchFigure(b, "abl-switchtime") }
func BenchmarkAblationLU(b *testing.B)         { benchFigure(b, "abl-lu") }

// --- micro-benchmarks at the paper's scales ----------------------------

func BenchmarkSimRandomOuter(b *testing.B) {
	const n, p = 100, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(outer.NewRandom(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

func BenchmarkSimDynamicOuter(b *testing.B) {
	const n, p = 100, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(outer.NewDynamic(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

func BenchmarkSimTwoPhasesOuter(b *testing.B) {
	const n, p = 100, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	beta, _ := analysis.OptimalBetaOuter(rs, n)
	thr := outer.ThresholdFromBeta(beta, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(outer.NewTwoPhases(n, p, thr, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

func BenchmarkSimRandomMatrix(b *testing.B) {
	const n, p = 40, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(matmul.NewRandom(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

func BenchmarkSimDynamicMatrix(b *testing.B) {
	const n, p = 40, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(matmul.NewDynamic(n, p, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

func BenchmarkSimTwoPhasesMatrix(b *testing.B) {
	const n, p = 40, 100
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	beta, _ := analysis.OptimalBetaMatrix(rs, n)
	thr := matmul.ThresholdFromBeta(beta, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(matmul.NewTwoPhases(n, p, thr, rng.New(uint64(i))), speeds.NewFixed(s))
	}
}

func BenchmarkOptimalBetaOuter100(b *testing.B) {
	root := rng.New(1)
	rs := speeds.Relative(speeds.UniformRange(100, 10, 100, root))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.OptimalBetaOuter(rs, 100)
	}
}

func BenchmarkOptimalBetaMatrix100(b *testing.B) {
	root := rng.New(1)
	rs := speeds.Relative(speeds.UniformRange(100, 10, 100, root))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.OptimalBetaMatrix(rs, 40)
	}
}

func BenchmarkSimCholeskyLocality(b *testing.B) {
	const n, p = 24, 16
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cholesky.Simulate(n, cholesky.LocalityReady, speeds.NewFixed(s), rng.New(uint64(i)))
	}
}

func BenchmarkSimBandwidthTwoPhases(b *testing.B) {
	const n, p = 100, 20
	root := rng.New(1)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	beta, _ := analysis.OptimalBetaOuter(rs, n)
	thr := outer.ThresholdFromBeta(beta, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunBandwidth(outer.NewTwoPhases(n, p, thr, rng.New(uint64(i))), speeds.NewFixed(s), 400, 2)
	}
}

// BenchmarkServiceHostNext measures scheduler-as-a-service assignment
// throughput at the transport-free limit: P=64 workers round-robin
// against one mutex-guarded service.Host (outer 2phases, batch 4).
// One op is one granted master interaction, so assignments/sec is
// 1e9/(ns/op) — the baseline number future scaling PRs move.
func BenchmarkServiceHostNext(b *testing.B) {
	const n, p, batch = 128, 64, 4
	newHost := func(seed uint64) *service.Host {
		drv := core.NewSchedulerDriver(outer.NewTwoPhasesAuto(n, p, rng.New(seed).Split()))
		return service.NewHost(drv, batch)
	}
	seed := uint64(1)
	h := newHost(seed)
	pending := make([][]core.Task, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := i % p
		a, status, err := h.Next(w, pending[w])
		if err != nil {
			b.Fatal(err)
		}
		pending[w] = a.Tasks
		if status == service.StatusDone {
			b.StopTimer()
			seed++
			h = newHost(seed)
			pending = make([][]core.Task, p)
			b.StartTimer()
		}
	}
}

// BenchmarkServiceHostNextParallel is the contended variant: 64
// logical workers hammering the Host mutex from all procs.
func BenchmarkServiceHostNextParallel(b *testing.B) {
	const n, p, batch = 128, 64, 4
	var mu sync.Mutex
	var wseq int
	var h *service.Host
	reset := func(seed uint64) {
		h = service.NewHost(core.NewSchedulerDriver(outer.NewTwoPhasesAuto(n, p, rng.New(seed).Split())), batch)
	}
	seed := uint64(1)
	reset(seed)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		w := wseq % p
		wseq++
		mu.Unlock()
		var pending []core.Task
		var lastHost *service.Host
		for pb.Next() {
			mu.Lock()
			host := h
			mu.Unlock()
			if host != lastHost { // fresh run: pending batches died with the old one
				pending, lastHost = nil, host
			}
			a, status, err := host.Next(w, pending)
			if err != nil {
				b.Error(err) // Fatal must not be called off the benchmark goroutine
				return
			}
			pending = a.Tasks
			if status == service.StatusDone {
				mu.Lock()
				if h == host { // first retiree swaps in a fresh run
					seed++
					reset(seed)
				}
				mu.Unlock()
				pending = nil
			}
		}
	})
}
