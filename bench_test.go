package hetsched

// Benchmarks regenerating every figure of the paper (in quick mode so
// `go test -bench=.` stays tractable; run cmd/hpdc14 for full-scale
// regeneration) plus micro-benchmarks of the simulator and the
// schedulers at the paper's actual scales.

import (
	"testing"

	"hetsched/internal/experiments"
	"hetsched/internal/perf"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	exp, known := experiments.Registry[id]
	if !known {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		res := exp.Run(experiments.Config{Seed: uint64(i + 1), Quick: true, Reps: 1})
		if len(res.Series) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig1(b *testing.B)  { benchFigure(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchFigure(b, "fig2") }
func BenchmarkFig4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkSec36(b *testing.B) { benchFigure(b, "sec36") }

func BenchmarkAblationStatic(b *testing.B)     { benchFigure(b, "abl-static") }
func BenchmarkAblationPhase2(b *testing.B)     { benchFigure(b, "abl-phase2") }
func BenchmarkAblationODE(b *testing.B)        { benchFigure(b, "abl-ode") }
func BenchmarkAblationRobust(b *testing.B)     { benchFigure(b, "abl-robust") }
func BenchmarkAblationCholesky(b *testing.B)   { benchFigure(b, "abl-cholesky") }
func BenchmarkAblationMapReduce(b *testing.B)  { benchFigure(b, "abl-mapreduce") }
func BenchmarkAblationOverlap(b *testing.B)    { benchFigure(b, "abl-overlap") }
func BenchmarkAblationODEMatrix(b *testing.B)  { benchFigure(b, "abl-ode-matrix") }
func BenchmarkAblationPerProc(b *testing.B)    { benchFigure(b, "abl-perproc") }
func BenchmarkAblationSwitchTime(b *testing.B) { benchFigure(b, "abl-switchtime") }
func BenchmarkAblationLU(b *testing.B)         { benchFigure(b, "abl-lu") }
func BenchmarkAblationQR(b *testing.B)         { benchFigure(b, "abl-qr") }

// --- micro-benchmarks at the paper's scales ----------------------------
//
// The bodies live in internal/perf so cmd/benchjson can run the same
// code and record the results as the repo's JSON perf baseline.

func BenchmarkSimRandomOuter(b *testing.B)        { perf.SimRandomOuter(b) }
func BenchmarkSimDynamicOuter(b *testing.B)       { perf.SimDynamicOuter(b) }
func BenchmarkSimTwoPhasesOuter(b *testing.B)     { perf.SimTwoPhasesOuter(b) }
func BenchmarkSimRandomMatrix(b *testing.B)       { perf.SimRandomMatrix(b) }
func BenchmarkSimDynamicMatrix(b *testing.B)      { perf.SimDynamicMatrix(b) }
func BenchmarkSimTwoPhasesMatrix(b *testing.B)    { perf.SimTwoPhasesMatrix(b) }
func BenchmarkOptimalBetaOuter100(b *testing.B)   { perf.OptimalBetaOuter100(b) }
func BenchmarkOptimalBetaMatrix100(b *testing.B)  { perf.OptimalBetaMatrix100(b) }
func BenchmarkSimCholeskyLocality(b *testing.B)   { perf.SimCholeskyLocality(b) }
func BenchmarkSimLULocality(b *testing.B)         { perf.SimLULocality(b) }
func BenchmarkSimQRLocality(b *testing.B)         { perf.SimQRLocality(b) }
func BenchmarkSimBandwidthTwoPhases(b *testing.B) { perf.SimBandwidthTwoPhases(b) }

// BenchmarkServiceHostNext measures scheduler-as-a-service assignment
// throughput; see perf.ServiceHostNext for the setup.
func BenchmarkServiceHostNext(b *testing.B) { perf.ServiceHostNext(b) }

// BenchmarkServiceHostNextJournal is the lease loop with the
// write-ahead journal armed: the delta to the lease row is the full
// durability tax (mutation framing + group commit) on the poll path.
func BenchmarkServiceHostNextJournal(b *testing.B) { perf.ServiceHostNextJournal(b) }

// BenchmarkServiceHostNextLease is the same poll loop with a
// never-firing lease armed: the delta to BenchmarkServiceHostNext is
// the cost of reclamation bookkeeping on the hot path.
func BenchmarkServiceHostNextLease(b *testing.B) { perf.ServiceHostNextLease(b) }

// BenchmarkServiceHostNextParallel is the contended variant;
// BenchmarkServiceHostNextParallelEvents adds an idle event stream so
// the delta prices the observability hooks on the poll hot path.
func BenchmarkServiceHostNextParallel(b *testing.B)       { perf.ServiceHostNextParallel(b) }
func BenchmarkServiceHostNextParallelEvents(b *testing.B) { perf.ServiceHostNextParallelEvents(b) }

// BenchmarkClusterHost1k / 10k / 100k price Host throughput under
// virtual worker fleets: one op is a complete internal/cluster
// scenario (1k, 10k, or 100k heterogeneous workers draining an outer
// run against the real Host); polls/op is reported alongside so ns/op
// divides into a per-master-interaction cost at fleet scale.
func BenchmarkClusterHost1k(b *testing.B)   { perf.ClusterHost1k(b) }
func BenchmarkClusterHost10k(b *testing.B)  { perf.ClusterHost10k(b) }
func BenchmarkClusterHost100k(b *testing.B) { perf.ClusterHost100k(b) }

// BenchmarkClusterHost1M is the million-worker stress row (promoted
// from the old TestHerd1MSmoke); it skips itself under -short.
func BenchmarkClusterHost1M(b *testing.B) { perf.ClusterHost1M(b) }

// BenchmarkServiceRouterNext prices the federation router's per-poll
// overhead (consistent-hash lookup + registry fetch) over the
// single-host BenchmarkServiceHostNext baseline.
func BenchmarkServiceRouterNext(b *testing.B) { perf.ServiceRouterNext(b) }

// BenchmarkClusterHostFederated4x25k is the federated fleet-scale row:
// 4 hosts × 25k workers through the virtual-time cluster harness.
func BenchmarkClusterHostFederated4x25k(b *testing.B) { perf.ClusterHostFederated4x25k(b) }

// BenchmarkServiceMigrate25k prices one snapshot-ship-replay handoff
// of a 25,000-worker run between two in-process schedd servers —
// 1e9/ns_per_op is runs migrated per second.
func BenchmarkServiceMigrate25k(b *testing.B) { perf.ServiceMigrate25k(b) }
