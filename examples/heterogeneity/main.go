// Heterogeneity: Fig. 7 in miniature — the ranking of the scheduling
// strategies, and the accuracy of the analysis, are insensitive to how
// heterogeneous the platform is. Speeds are drawn uniformly from
// [100−h, 100+h] for increasing h; h = 0 is a homogeneous platform.
package main

import (
	"fmt"

	"hetsched/internal/analysis"
	"hetsched/internal/outer"
	"hetsched/internal/rng"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
)

func main() {
	const (
		n    = 100
		p    = 20
		reps = 10
		seed = 11
	)

	root := rng.New(seed)
	fmt.Printf("%6s %10s %10s %10s %10s\n", "h", "2Phases", "Dynamic", "Random", "Analysis")
	for _, h := range []float64{0, 25, 50, 75, 99} {
		var two, dyn, rnd, ana float64
		for rep := 0; rep < reps; rep++ {
			s := speeds.Heterogeneity(p, h, root.Split())
			rs := speeds.Relative(s)
			lb := analysis.LowerBoundOuter(rs, n)

			beta, predicted := analysis.OptimalBetaOuter(rs, n)
			m2 := sim.Run(outer.NewTwoPhases(n, p, outer.ThresholdFromBeta(beta, n), root.Split()), speeds.NewFixed(s))
			md := sim.Run(outer.NewDynamic(n, p, root.Split()), speeds.NewFixed(s))
			mr := sim.Run(outer.NewRandom(n, p, root.Split()), speeds.NewFixed(s))

			two += float64(m2.Blocks) / lb
			dyn += float64(md.Blocks) / lb
			rnd += float64(mr.Blocks) / lb
			ana += predicted
		}
		fmt.Printf("%6.0f %10.3f %10.3f %10.3f %10.3f\n",
			h, two/reps, dyn/reps, rnd/reps, ana/reps)
	}
	fmt.Println("\nranking (2Phases < Dynamic < Random) is stable across heterogeneity degrees")
}
