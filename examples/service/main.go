// Example service demonstrates the scheduler-as-a-service daemon end
// to end without any external setup: it starts an in-process schedd
// handler on a loopback listener, creates an outer-product run over
// the HTTP API, drains it with concurrent HTTP worker loops — one of
// which crashes mid-run while holding a batch, exercising lease-based
// task reclamation — and prints the final statistics and a Gantt
// chart of the recorded trace.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"hetsched/internal/service"
)

const workers = 8

func main() {
	// The 150ms default lease is what lets the run survive the crashed
	// worker below: its unreported batch is reclaimed and reassigned.
	svc := service.New(service.Options{DefaultBatch: 4, GCInterval: -1, DefaultLease: 150 * time.Millisecond})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("schedd listening on %s\n", base)

	var info service.RunInfo
	post(base+"/v1/runs", service.CreateRunRequest{
		Kernel: "outer", Strategy: "2phases", N: 60, P: workers, Seed: 7,
	}, &info)
	fmt.Printf("created run %s: %s/%s n=%d p=%d (%d tasks, batch %d)\n",
		info.ID, info.Kernel, info.Strategy, info.N, info.P, info.Total, info.Batch)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var completed []int64
			for {
				var next service.NextResponse
				post(fmt.Sprintf("%s/v1/runs/%s/next", base, info.ID),
					service.NextRequest{Worker: w, Completed: completed}, &next)
				completed = nil
				switch next.Status {
				case service.StatusDone:
					return
				case service.StatusWait:
					time.Sleep(time.Millisecond)
				case service.StatusOK:
					// Worker 0 "crashes" (stops polling) while holding
					// its first batch; the lease reclaims it.
					if w == 0 {
						fmt.Printf("worker 0 crashed holding %d tasks (lease %.0fms)\n",
							len(next.Tasks), next.LeaseSeconds*1e3)
						return
					}
					// "Execute" the batch; a real worker would do block
					// arithmetic here (see internal/exec).
					completed = next.Tasks
				}
			}
		}(w)
	}
	wg.Wait()

	var st service.StatsResponse
	get(fmt.Sprintf("%s/v1/runs/%s/stats", base, info.ID), &st)
	fmt.Printf("\nstate               %s\n", st.State)
	fmt.Printf("tasks               %d assigned, %d completed, %d remaining\n",
		st.Assigned, st.Completed, st.Remaining)
	fmt.Printf("reclaimed           %d tasks (lease expiry after the crash)\n", st.Reclaimed)
	fmt.Printf("communication       %d blocks\n", st.Blocks)
	fmt.Printf("master requests     %d (mean batch %.2f tasks)\n", st.Requests, st.BatchTasks.Mean)
	fmt.Printf("phase-1 tasks       %d\n", st.Phase1Tasks)
	fmt.Printf("makespan            %.1f ms wall clock\n", st.MakespanSeconds*1e3)

	resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/trace?gantt=1", base, info.ID))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	gantt, _ := io.ReadAll(resp.Body)
	fmt.Printf("\n%s", gantt)
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: %s", resp.Status, msg)
	}
	if err := service.DecodeStrict(resp.Body, out); err != nil {
		log.Fatal(err)
	}
}
