// Example service demonstrates the scheduler-as-a-service daemon end
// to end without any external setup: it starts an in-process schedd
// handler on a loopback listener, creates an outer-product run over
// the HTTP API, drains it with concurrent HTTP worker loops — one of
// which crashes mid-run while holding a batch, exercising lease-based
// task reclamation — and prints the final statistics and a Gantt
// chart of the recorded trace. It finishes on the observability
// plane: an SSE replay of the run's first events, the /v1/metrics
// aggregates, and an excerpt of the Prometheus exposition.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"hetsched/internal/events"
	"hetsched/internal/service"
)

const workers = 8

func main() {
	// The 150ms default lease is what lets the run survive the crashed
	// worker below: its unreported batch is reclaimed and reassigned.
	// EventsBuffer is sized past the run's event count so the SSE
	// replay at the end can rewind to the very first event.
	svc := service.New(service.Options{DefaultBatch: 4, GCInterval: -1,
		DefaultLease: 150 * time.Millisecond, EventsBuffer: 8192})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("schedd listening on %s\n", base)

	var info service.RunInfo
	post(base+"/v1/runs", service.CreateRunRequest{
		Kernel: "outer", Strategy: "2phases", N: 60, P: workers, Seed: 7,
	}, &info)
	fmt.Printf("created run %s: %s/%s n=%d p=%d (%d tasks, batch %d)\n",
		info.ID, info.Kernel, info.Strategy, info.N, info.P, info.Total, info.Batch)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var completed []int64
			for {
				var next service.NextResponse
				post(fmt.Sprintf("%s/v1/runs/%s/next", base, info.ID),
					service.NextRequest{Worker: w, Completed: completed}, &next)
				completed = nil
				switch next.Status {
				case service.StatusDone:
					return
				case service.StatusWait:
					time.Sleep(time.Millisecond)
				case service.StatusOK:
					// Worker 0 "crashes" (stops polling) while holding
					// its first batch; the lease reclaims it.
					if w == 0 {
						fmt.Printf("worker 0 crashed holding %d tasks (lease %.0fms)\n",
							len(next.Tasks), next.LeaseSeconds*1e3)
						return
					}
					// "Execute" the batch; a real worker would do block
					// arithmetic here (see internal/exec).
					completed = next.Tasks
				}
			}
		}(w)
	}
	wg.Wait()

	var st service.StatsResponse
	get(fmt.Sprintf("%s/v1/runs/%s/stats", base, info.ID), &st)
	fmt.Printf("\nstate               %s\n", st.State)
	fmt.Printf("tasks               %d assigned, %d completed, %d remaining\n",
		st.Assigned, st.Completed, st.Remaining)
	fmt.Printf("reclaimed           %d tasks (lease expiry after the crash)\n", st.Reclaimed)
	fmt.Printf("communication       %d blocks\n", st.Blocks)
	fmt.Printf("master requests     %d (mean batch %.2f tasks)\n", st.Requests, st.BatchTasks.Mean)
	fmt.Printf("phase-1 tasks       %d\n", st.Phase1Tasks)
	fmt.Printf("makespan            %.1f ms wall clock\n", st.MakespanSeconds*1e3)

	resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/trace?gantt=1", base, info.ID))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	gantt, _ := io.ReadAll(resp.Body)
	fmt.Printf("\n%s", gantt)

	// The observability plane: replay the run's first events over SSE
	// (the same stream `curl -N .../events` or the /v1/ui dashboard
	// tails live), then the service-wide aggregates in both formats.
	fmt.Printf("\nfirst three events of the run (SSE replay):\n")
	for _, e := range sseEvents(fmt.Sprintf("%s/v1/runs/%s/events?after=0&max=3", base, info.ID)) {
		fmt.Printf("event %d: %-11s worker=%d task=%d count=%d state=%q\n",
			e.Seq, e.Type, e.Worker, e.Task, e.Count, e.State)
	}

	var mx service.MetricsResponse
	get(base+"/v1/metrics", &mx)
	fmt.Printf("\nmetrics             %d run(s), %d polls, %d events published, %d dropped\n",
		mx.Runs, mx.Polls, mx.EventsPublished, mx.EventsDropped)
	promResp, err := http.Get(base + "/v1/metrics?format=prometheus")
	if err != nil {
		log.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, _ := io.ReadAll(promResp.Body)
	fmt.Printf("prometheus exposition (excerpt):\n")
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.HasPrefix(line, "schedd_runs") || strings.HasPrefix(line, "schedd_events_") {
			fmt.Println(line)
		}
	}
}

// sseEvents reads one text/event-stream response to completion and
// decodes the data: payload of every frame that carries one.
func sseEvents(url string) []events.Event {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	var out []events.Event
	sc := bufio.NewScanner(resp.Body)
	idFrame := false // scheduler events carry id:; drops/end frames do not
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			idFrame = true
		case strings.HasPrefix(line, "event: "), line == "":
			idFrame = false
		case strings.HasPrefix(line, "data: ") && idFrame:
			var e events.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &e); err != nil {
				log.Fatal(err)
			}
			out = append(out, e)
		}
	}
	return out
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: %s", resp.Status, msg)
	}
	if err := service.DecodeStrict(resp.Body, out); err != nil {
		log.Fatal(err)
	}
}
