// Example federation demonstrates the consistent-hash federated
// topology end to end without any external setup: it starts three
// in-process schedd hosts behind a federation router on loopback
// listeners, creates runs through the router (which places each on
// its ring owner), drains them with HTTP worker loops that never need
// to know which host serves their run, and finishes on the fleet-wide
// observability plane: the aggregated /v1/metrics with per-run host
// labels, and the deterministic 503 a poll draws after one host is
// killed mid-demo.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"hetsched/internal/federation"
	"hetsched/internal/service"
)

const hosts = 3

func main() {
	// Three real schedd hosts, each on its own loopback listener —
	// the router will talk to them over actual HTTP. The servers are
	// kept so the demo can kill one later.
	targets := make([]federation.Target, hosts)
	servers := make([]*http.Server, hosts)
	for i := range targets {
		svc := service.New(service.Options{DefaultBatch: 4, GCInterval: -1})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers[i] = &http.Server{Handler: svc}
		go servers[i].Serve(ln)
		defer servers[i].Close()
		targets[i] = federation.Target{
			Name: fmt.Sprintf("host-%d", i),
			URL:  "http://" + ln.Addr().String(),
		}
		fmt.Printf("%s at %s\n", targets[i].Name, targets[i].URL)
	}

	rt, err := federation.NewRouter(targets, federation.Options{Epoch: 1})
	if err != nil {
		log.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rsrv := &http.Server{Handler: rt}
	go rsrv.Serve(rln)
	defer rsrv.Close()
	base := "http://" + rln.Addr().String()
	fmt.Printf("router at %s over %d hosts\n\n", base, hosts)

	// Create one run per host's worth of work through the router; the
	// consistent hash of the pinned id decides the owner.
	ids := []string{"demo-a", "demo-b", "demo-c"}
	for i, id := range ids {
		var info service.RunInfo
		post(base+"/v1/runs", service.CreateRunRequest{
			ID: id, Kernel: service.KernelOuter, Strategy: "2phases",
			N: 24, P: 4, Seed: uint64(i + 1),
		}, &info)
		fmt.Printf("created %s (%d tasks) -> %s\n", id, info.Total,
			targets[rt.Ring().Owner(id)].Name)
	}

	// Drain every run through the router with plain HTTP worker loops.
	var wg sync.WaitGroup
	for _, id := range ids {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(id string, w int) {
				defer wg.Done()
				var completed []int64
				for {
					var resp service.NextResponse
					post(fmt.Sprintf("%s/v1/runs/%s/next", base, id),
						service.NextRequest{Worker: w, Completed: completed}, &resp)
					completed = resp.Tasks
					switch resp.Status {
					case service.StatusDone:
						return
					case service.StatusWait:
						time.Sleep(2 * time.Millisecond)
					}
				}
			}(id, w)
		}
	}
	wg.Wait()
	fmt.Println("\nall runs drained through the router")

	// Fleet-wide metrics: one response aggregating every host, each
	// run labeled with the host that served it.
	var m service.MetricsResponse
	get(base+"/v1/metrics", &m)
	fmt.Printf("fleet: hosts=%d runs=%d polls=%d completed=%d blocks=%d\n",
		m.Hosts, m.Runs, m.Polls, m.Completed, m.Blocks)
	for _, st := range m.PerRun {
		fmt.Printf("  %s on %s: %d/%d tasks, makespan %.3fs\n",
			st.ID, st.Host, st.Completed, st.Total, st.MakespanSeconds)
	}

	// Kill demo-a's owner and show the router's deterministic answer
	// for the dead host's runs: 503 with a Retry-After hint.
	victim := rt.Ring().Owner("demo-a")
	fmt.Printf("\nkilling %s...\n", targets[victim].Name)
	servers[victim].Close()
	resp, err := http.Post(fmt.Sprintf("%s/v1/runs/%s/next", base, "demo-a"),
		"application/json", bytes.NewReader([]byte(`{"worker":0}`)))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("poll for demo-a: %d (Retry-After: %s) %s",
		resp.StatusCode, resp.Header.Get("Retry-After"), body)
}

func post(url string, in, out any) {
	buf, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
