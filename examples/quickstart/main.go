// Quickstart: simulate the paper's recommended scheduler
// (DynamicOuter2Phases with the analysis-tuned threshold) on a
// heterogeneous platform and compare its communication volume with the
// lower bound and with the naive random scheduler.
package main

import (
	"fmt"

	"hetsched/internal/analysis"
	"hetsched/internal/outer"
	"hetsched/internal/rng"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
)

func main() {
	const (
		n    = 100 // blocks per vector (the outer product has n² tasks)
		p    = 20  // processors
		seed = 42
	)

	root := rng.New(seed)

	// A heterogeneous platform: speeds uniform in [10, 100], the
	// paper's default (a 10x speed spread).
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)

	// The communication lower bound: every processor must at least
	// receive the half-perimeter of a square proportional to its
	// speed.
	lb := analysis.LowerBoundOuter(rs, n)
	fmt.Printf("platform: %d processors, %d×%d tasks, lower bound %.0f blocks\n\n", p, n, n, lb)

	// Tune the two-phase threshold analytically: beta* minimizes the
	// predicted volume; the scheduler switches to random allocation
	// when e^(−beta*)·n² tasks remain.
	beta, predicted := analysis.OptimalBetaOuter(rs, n)
	threshold := outer.ThresholdFromBeta(beta, n)
	fmt.Printf("analysis: beta* = %.3f → switch threshold %d tasks, predicted ratio %.3f\n\n", beta, threshold, predicted)

	// Simulate the recommended scheduler and the naive baseline.
	two := sim.Run(outer.NewTwoPhases(n, p, threshold, root.Split()), speeds.NewFixed(s))
	rnd := sim.Run(outer.NewRandom(n, p, root.Split()), speeds.NewFixed(s))

	fmt.Printf("%-22s %10s %12s\n", "strategy", "blocks", "vs bound")
	fmt.Printf("%-22s %10d %12.3f\n", "DynamicOuter2Phases", two.Blocks, float64(two.Blocks)/lb)
	fmt.Printf("%-22s %10d %12.3f\n", "RandomOuter", rnd.Blocks, float64(rnd.Blocks)/lb)
	fmt.Printf("\nthe data-aware two-phase scheduler ships %.1fx less data\n",
		float64(rnd.Blocks)/float64(two.Blocks))
}
