// Gemm: run a real blocked matrix multiplication C = A·B through the
// paper's DynamicMatrix2Phases scheduler on a pool of worker
// goroutines, with heterogeneity emulated by throttling, and verify
// the numerical result against a serial reference product.
//
// This is the "runtime system" view of the paper: the very same
// scheduler state machine that the event simulator measures also
// drives an actual computation.
package main

import (
	"fmt"
	"time"

	"hetsched/internal/analysis"
	"hetsched/internal/exec"
	"hetsched/internal/linalg"
	"hetsched/internal/matmul"
	"hetsched/internal/rng"
	"hetsched/internal/speeds"
)

func main() {
	const (
		n    = 16 // blocks per dimension → n³ = 4096 tasks
		l    = 8  // block size → 128×128 matrices
		p    = 8  // workers
		seed = 3
	)

	root := rng.New(seed)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)

	a := linalg.NewBlockedMatrix(n, l)
	b := linalg.NewBlockedMatrix(n, l)
	a.Fill(root.Split())
	b.Fill(root.Split())

	beta, _ := analysis.OptimalBetaMatrix(rs, n)
	sched := matmul.NewTwoPhases(n, p, matmul.ThresholdFromBeta(beta, n), root.Split())

	start := time.Now()
	c, res := exec.RunGemm(sched, a, b, exec.Options{
		Workers:  p,
		Speeds:   s,
		TaskCost: 200 * time.Microsecond,
	})
	elapsed := time.Since(start)

	ref := linalg.ReferenceGemm(a, b)
	diff := c.MaxAbsDiff(ref)

	lb := analysis.LowerBoundMatrix(rs, n)
	fmt.Printf("C = A·B with %d×%d blocks of %d×%d, %d tasks, %d workers\n", n, n, l, l, n*n*n, p)
	fmt.Printf("scheduler            %s (beta* = %.3f)\n", sched.Name(), beta)
	fmt.Printf("wall time            %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("communication        %d blocks (%.3f × lower bound)\n", res.Blocks, float64(res.Blocks)/lb)
	fmt.Printf("max |C - C_ref|      %.3e\n", diff)
	if diff < 1e-9 {
		fmt.Println("result verified against the serial reference ✓")
	} else {
		fmt.Println("RESULT MISMATCH ✗")
	}

	fmt.Printf("\nper-worker tasks (speed-proportional load balancing):\n")
	total := 0
	for _, t := range res.TasksPer {
		total += t
	}
	for w, t := range res.TasksPer {
		fmt.Printf("  worker %d: speed %5.1f → %5d tasks (%.1f%%, ideal %.1f%%)\n",
			w, s[w], t, 100*float64(t)/float64(total), 100*rs[w])
	}
}
