// Betatuning: the paper's headline result in miniature — the ODE
// analysis predicts the communication volume of the two-phase
// scheduler well enough to pick the switch threshold β analytically,
// and the threshold can even be tuned while staying agnostic to
// processor speeds (§3.6).
//
// The example sweeps β by simulation, prints the analytic prediction
// side by side, and shows that the analytic minimizer lands in the
// simulated optimum's flat region.
package main

import (
	"fmt"

	"hetsched/internal/analysis"
	"hetsched/internal/outer"
	"hetsched/internal/rng"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
)

func main() {
	const (
		n    = 100
		p    = 20
		reps = 5
		seed = 7
	)

	root := rng.New(seed)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	lb := analysis.LowerBoundOuter(rs, n)

	fmt.Printf("%6s %12s %12s\n", "beta", "analysis", "simulated")
	bestSim, bestSimBeta := 1e18, 0.0
	for b := 2.0; b <= 7.0+1e-9; b += 0.5 {
		mean := 0.0
		for rep := 0; rep < reps; rep++ {
			sched := outer.NewTwoPhases(n, p, outer.ThresholdFromBeta(b, n), root.Split())
			m := sim.Run(sched, speeds.NewFixed(s))
			mean += float64(m.Blocks) / lb
		}
		mean /= reps
		if mean < bestSim {
			bestSim, bestSimBeta = mean, b
		}
		fmt.Printf("%6.2f %12.3f %12.3f\n", b, analysis.RatioOuter(b, rs, n), mean)
	}

	betaStar, predicted := analysis.OptimalBetaOuter(rs, n)
	betaHom, _ := analysis.OptimalBetaOuter(speeds.Homogeneous(p), n)
	fmt.Printf("\nanalysis minimizer     beta* = %.4f (predicted ratio %.3f)\n", betaStar, predicted)
	fmt.Printf("speed-agnostic tuning  beta_hom = %.4f (homogeneous platform, §3.6)\n", betaHom)
	fmt.Printf("simulation optimum     beta ≈ %.2f (ratio %.3f)\n", bestSimBeta, bestSim)
	fmt.Printf("\nthe switch happens when e^(−beta*)·n² ≈ %d of the %d tasks remain\n",
		outer.ThresholdFromBeta(betaStar, n), n*n)
}
