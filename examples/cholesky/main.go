// Cholesky: the paper's future-work direction (§5) made runnable —
// dynamic, data-aware scheduling of a kernel with dependencies.
//
// The example simulates the tiled Cholesky task DAG under three
// ready-task selection policies, then replays the locality-aware
// schedule on a real SPD matrix and verifies A = L·Lᵀ numerically.
package main

import (
	"fmt"

	"hetsched/internal/cholesky"
	"hetsched/internal/linalg"
	"hetsched/internal/rng"
	"hetsched/internal/speeds"
)

func main() {
	const (
		n    = 12 // tiles per dimension → 650 tasks
		l    = 6  // tile size → 72×72 matrix
		p    = 8  // processors
		seed = 21
	)

	root := rng.New(seed)
	s := speeds.UniformRange(p, 10, 100, root.Split())

	fmt.Printf("tiled Cholesky: %d×%d tiles (%d tasks), %d heterogeneous processors\n\n",
		n, n, cholesky.TaskCount(n), p)
	fmt.Printf("%-20s %12s %12s %12s\n", "policy", "tiles sent", "makespan", "efficiency")

	var locality *cholesky.Metrics
	for _, pol := range []cholesky.Policy{
		cholesky.RandomReady, cholesky.LocalityReady, cholesky.CriticalPathReady,
	} {
		m := cholesky.Simulate(n, pol, speeds.NewFixed(s), root.Split())
		fmt.Printf("%-20s %12d %12.3f %12.3f\n", pol, m.Blocks, m.Makespan, m.Efficiency())
		if pol == cholesky.LocalityReady {
			locality = m
		}
	}

	// Verify the locality schedule numerically.
	a := linalg.NewBlockedMatrix(n, l)
	linalg.RandomSPD(a, root.Split())
	work := linalg.NewBlockedMatrix(n, l)
	for i, blk := range a.Blocks {
		copy(work.Blocks[i].Data, blk.Data)
	}
	if err := cholesky.Replay(locality.Schedule, work); err != nil {
		fmt.Println("replay failed:", err)
		return
	}
	res := linalg.CholeskyResidual(a, work)
	fmt.Printf("\nreplayed the LocalityReady schedule on a real %d×%d SPD matrix\n", n*l, n*l)
	fmt.Printf("max |A − L·Lᵀ| = %.3e", res)
	if res < 1e-8 {
		fmt.Println("  — factorization verified ✓")
	} else {
		fmt.Println("  — MISMATCH ✗")
	}
}
