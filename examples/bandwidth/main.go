// Bandwidth: what happens when the paper's perfect-overlap assumption
// is dropped? The master gets a single outgoing link of finite
// bandwidth and workers prefetch a small window of assignments. The
// example shows (a) that data-aware scheduling buys real bandwidth
// headroom — it ships less, so it stalls later — and (b) that a small
// prefetch window is enough for good overlap, the observation the
// paper cites from the literature.
package main

import (
	"fmt"
	"math"

	"hetsched/internal/analysis"
	"hetsched/internal/outer"
	"hetsched/internal/rng"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
)

func main() {
	const (
		n    = 100
		p    = 20
		seed = 5
	)

	root := rng.New(seed)
	s := speeds.UniformRange(p, 10, 100, root.Split())
	rs := speeds.Relative(s)
	sumS := 0.0
	for _, v := range s {
		sumS += v
	}
	ideal := float64(n*n) / sumS
	beta, _ := analysis.OptimalBetaOuter(rs, n)
	thr := outer.ThresholdFromBeta(beta, n)

	fmt.Printf("p=%d, n=%d, ideal makespan %.2f (pure compute)\n\n", p, n, ideal)
	fmt.Println("makespan / ideal with prefetch lookahead 2:")
	fmt.Printf("%12s %22s %14s\n", "bandwidth", "DynamicOuter2Phases", "RandomOuter")
	for _, bw := range []float64{100, 200, 400, 800, math.Inf(1)} {
		two := sim.RunBandwidth(outer.NewTwoPhases(n, p, thr, root.Split()), speeds.NewFixed(s), bw, 2)
		rnd := sim.RunBandwidth(outer.NewRandom(n, p, root.Split()), speeds.NewFixed(s), bw, 2)
		label := fmt.Sprintf("%g", bw)
		if math.IsInf(bw, 1) {
			label = "∞ (paper)"
		}
		fmt.Printf("%12s %22.3f %14.3f\n", label, two.Makespan/ideal, rnd.Makespan/ideal)
	}

	fmt.Println("\nmakespan / ideal at bandwidth 400, varying prefetch lookahead:")
	fmt.Printf("%12s %22s\n", "lookahead", "DynamicOuter2Phases")
	for _, la := range []int{0, 1, 2, 4} {
		two := sim.RunBandwidth(outer.NewTwoPhases(n, p, thr, root.Split()), speeds.NewFixed(s), 400, la)
		fmt.Printf("%12d %22.3f\n", la, two.Makespan/ideal)
	}
	fmt.Println("\na prefetch window of 1–2 assignments already restores the overlap the paper assumes")
}
