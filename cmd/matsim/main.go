// Command matsim runs a single matrix-multiplication simulation and
// prints its communication metrics:
//
//	matsim -n 40 -p 100 -strategy 2phases -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsched/internal/analysis"
	"hetsched/internal/core"
	"hetsched/internal/experiments"
	"hetsched/internal/matmul"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
)

func main() {
	opts := experiments.RegisterSimFlags(flag.CommandLine, 40, 100, "blocks per matrix dimension (n = N/l)")
	strategy := flag.String("strategy", "2phases", "random | sorted | dynamic | 2phases")
	beta := flag.Float64("beta", 0, "two-phase beta (0 = optimize analytically)")
	flag.Parse()

	n, p := opts.N, opts.P
	root, init, rs := opts.Platform()
	lb := analysis.LowerBoundMatrix(rs, n)

	var sched core.Scheduler
	schedRNG := root.Split()
	switch *strategy {
	case "random":
		sched = matmul.NewRandom(n, p, schedRNG)
	case "sorted":
		sched = matmul.NewSorted(n, p, schedRNG)
	case "dynamic":
		sched = matmul.NewDynamic(n, p, schedRNG)
	case "2phases":
		b := *beta
		if b == 0 {
			b, _ = analysis.OptimalBetaMatrix(rs, n)
			fmt.Printf("analysis-optimal beta* = %.4f\n", b)
		}
		sched = matmul.NewTwoPhases(n, p, matmul.ThresholdFromBeta(b, n), schedRNG)
	default:
		fmt.Fprintf(os.Stderr, "matsim: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	m := sim.Run(sched, speeds.NewFixed(init))
	fmt.Printf("strategy            %s\n", sched.Name())
	fmt.Printf("tasks               %d\n", sched.Total())
	fmt.Printf("communication       %d blocks\n", m.Blocks)
	fmt.Printf("lower bound         %.1f blocks\n", lb)
	fmt.Printf("normalized comm     %.4f\n", float64(m.Blocks)/lb)
	fmt.Printf("master requests     %d\n", m.Requests)
	fmt.Printf("makespan            %.4f time units\n", m.Makespan)
	fmt.Printf("load imbalance      %.4f (max relative deviation)\n", m.Imbalance(speeds.NewFixed(init)))
	if m.Phase1Tasks >= 0 {
		fmt.Printf("phase-1 tasks       %d (%.2f%%)\n", m.Phase1Tasks,
			100*float64(m.Phase1Tasks)/float64(sched.Total()))
	}
}
