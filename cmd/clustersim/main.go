// Command clustersim runs a deterministic virtual-time cluster
// scenario — a scripted heterogeneous worker fleet with crashes,
// stragglers, partitions and bursty arrivals — against the real
// scheduler service (internal/service) through internal/cluster, and
// prints per-run statistics, the invariant verdict and the
// determinism hash:
//
//	clustersim -scenario acceptance -seed 1
//	clustersim -scenario crash -kernel qr -n 8 -p 64 -mode http
//	clustersim -scenario herd -p 2000
//
// Scenarios come from the shared corpus (the same scripts the go-test
// matrix runs); -mode http drives the full HTTP/JSON path through an
// in-process listener and must produce the identical hash as -mode
// direct for equal seeds.
//
// -events <path> attaches a recording full-stream subscriber to every
// run and dumps the complete event ledger — every assignment,
// completion, reclaim, 409 conflict and state transition, in
// publication order — as JSON Lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hetsched/internal/cluster"
)

func main() {
	scenario := flag.String("scenario", "acceptance", "acceptance | drift | crash | janitor | herd | herd100k | herd1m | stragglers | backpressure | federated | federated-crash | master-crash | migrate")
	kernel := flag.String("kernel", "cholesky", "workload for drift/crash/janitor: outer | matmul | cholesky | lu | qr")
	n := flag.Int("n", 12, "blocks/tiles per dimension (drift/crash/janitor/stragglers)")
	p := flag.Int("p", 100, "fleet size (scenario-dependent)")
	seed := flag.Uint64("seed", 1, "scenario root seed")
	amplitude := flag.Float64("drift", 0.20, "drift amplitude for -scenario drift (0.05 = dyn.5, 0.20 = dyn.20)")
	victims := flag.Int("victims", 8, "crash count for -scenario crash")
	mode := flag.String("mode", "direct", "direct | http")
	eventsOut := flag.String("events", "", "dump the scenario's full event ledger to this file as JSON Lines (one event per line, publication order)")
	flag.Parse()

	var sc cluster.Scenario
	switch *scenario {
	case "acceptance":
		sc = cluster.Acceptance(*seed)
	case "drift":
		sc = cluster.HeterogeneousDrift(*kernel, *n, *p, *amplitude, *seed)
	case "crash":
		sc = cluster.CrashHeavy(*kernel, *n, *p, *victims, *seed)
	case "janitor":
		sc = cluster.JanitorRace(*kernel, *n, *p, *seed)
	case "herd":
		sc = cluster.ThunderingHerd(*p, *seed)
	case "herd100k":
		sc = cluster.Herd100k(*seed)
	case "herd1m":
		sc = cluster.Herd1M(*seed)
	case "stragglers":
		sc = cluster.StragglersAndPartitions(*n, *p, *seed)
	case "backpressure":
		sc = cluster.BackpressureObservers(*seed)
	case "federated":
		sc = cluster.Federated4x25k(*seed)
	case "federated-crash":
		sc = cluster.Federated4x25kHostCrash(*seed)
	case "master-crash":
		// The journaled master is checkpointed and SIGKILLed twice
		// mid-run, recovering from its write-ahead journal each time;
		// the printed hash must equal the journal-less uninterrupted
		// twin's (the determinism tests pin both).
		sc = cluster.MasterCrashMidRun(*seed)
	case "migrate":
		// Live migration on a journaled 4-host federation: an explicit
		// snapshot-ship-replay move at 120ms, an owner crash at 150ms
		// (the orphan's workers retry against the corpse), then a
		// ring-epoch bump at 250ms that scavenges the dead host's runs
		// from its journal and rebalances the survivors — every run
		// drains, zero LOST, hash-identical across -mode direct/http.
		sc = cluster.FederatedMigrate(*seed)
	default:
		fmt.Fprintf(os.Stderr, "clustersim: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	var m cluster.Mode
	switch *mode {
	case "direct":
		m = cluster.Direct
	case "http":
		m = cluster.HTTP
	default:
		fmt.Fprintf(os.Stderr, "clustersim: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	// The ledger dump rides on a recording full-stream subscriber per
	// run — a pure observer, so it cannot move the determinism hash.
	if *eventsOut != "" {
		for i := range sc.Runs {
			sc.Subscribers = append(sc.Subscribers,
				cluster.SubscriberSpec{Run: i, Kind: cluster.SubFast, Record: true})
		}
	}

	start := time.Now()
	res, err := cluster.Run(sc, m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("scenario      %s (seed %d, mode %s)\n", sc.Name, sc.Seed, m)
	fmt.Printf("events/polls  %d / %d\n", res.Events, res.Polls)
	fmt.Printf("virtual time  %v   (wall %v)\n", res.FinalVirtual.Round(time.Millisecond), wall.Round(time.Microsecond))
	for i, rr := range res.Runs {
		host := ""
		if res.Hosts > 1 {
			host = fmt.Sprintf(" host=%d", rr.HostIdx)
		}
		if !rr.Arrived {
			fmt.Printf("run %-2d never arrived\n", i)
			continue
		}
		if rr.Lost {
			fmt.Printf("run %-2d %-9s %-9s n=%-4d p=%-5d LOST (host crashed, %d tasks accepted before)%s\n",
				i, rr.Spec.Kernel, rr.Spec.Strategy, rr.Spec.N, rr.Spec.P, len(rr.Accepted), host)
			continue
		}
		st := rr.Stats
		fmt.Printf("run %-2d %-9s %-9s n=%-4d p=%-5d state=%-9s tasks=%d assigned=%d reclaimed=%d conflicts=%d blocks=%d makespan=%.3fs%s\n",
			i, rr.Spec.Kernel, rr.Info.Strategy, rr.Spec.N, rr.Spec.P,
			st.State, st.Completed, st.Assigned, st.Reclaimed, rr.Conflicts, st.Blocks, st.MakespanSeconds, host)
	}
	if err := res.CheckInvariants(); err != nil {
		fmt.Printf("invariants    VIOLATED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("invariants    ok (exactly-once, lease accounting, trace monotone, analysis bounds)\n")
	fmt.Printf("hash          %016x\n", res.Hash())

	if *eventsOut != "" {
		n, err := dumpEvents(*eventsOut, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: writing event ledger: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("events        %d written to %s\n", n, *eventsOut)
	}
}

// dumpEvents writes every recorded subscriber's event stream as JSON
// Lines, runs in order and each run's events in publication order.
func dumpEvents(path string, res *cluster.Result) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	n := 0
	for _, rr := range res.Runs {
		for _, l := range rr.Subscribers {
			if !l.Spec.Record {
				continue
			}
			for _, e := range l.Events {
				if err := enc.Encode(e); err != nil {
					f.Close()
					return n, err
				}
				n++
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}
