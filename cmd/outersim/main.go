// Command outersim runs a single outer-product simulation and prints
// its communication metrics. It is the smallest way to poke at the
// schedulers:
//
//	outersim -n 100 -p 20 -strategy 2phases -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsched/internal/analysis"
	"hetsched/internal/core"
	"hetsched/internal/experiments"
	"hetsched/internal/outer"
	"hetsched/internal/sim"
	"hetsched/internal/speeds"
	"hetsched/internal/trace"
)

func main() {
	opts := experiments.RegisterSimFlags(flag.CommandLine, 100, 20, "blocks per vector (n = N/l)")
	strategy := flag.String("strategy", "2phases", "random | sorted | dynamic | 2phases")
	beta := flag.Float64("beta", 0, "two-phase beta (0 = optimize analytically)")
	gantt := flag.Bool("gantt", false, "render a text Gantt chart of the run")
	flag.Parse()

	n, p := opts.N, opts.P
	root, init, rs := opts.Platform()
	lb := analysis.LowerBoundOuter(rs, n)

	var sched core.Scheduler
	schedRNG := root.Split()
	switch *strategy {
	case "random":
		sched = outer.NewRandom(n, p, schedRNG)
	case "sorted":
		sched = outer.NewSorted(n, p, schedRNG)
	case "dynamic":
		sched = outer.NewDynamic(n, p, schedRNG)
	case "2phases":
		b := *beta
		if b == 0 {
			b, _ = analysis.OptimalBetaOuter(rs, n)
			fmt.Printf("analysis-optimal beta* = %.4f\n", b)
		}
		sched = outer.NewTwoPhases(n, p, outer.ThresholdFromBeta(b, n), schedRNG)
	default:
		fmt.Fprintf(os.Stderr, "outersim: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	model := speeds.NewFixed(init)
	var rec *trace.Recorder
	var observe func(sim.Observation)
	if *gantt {
		rec = trace.NewRecorder(model)
		observe = rec.Observe
	}
	m := sim.RunObserved(sched, model, observe)
	fmt.Printf("strategy            %s\n", sched.Name())
	fmt.Printf("tasks               %d\n", sched.Total())
	fmt.Printf("communication       %d blocks\n", m.Blocks)
	fmt.Printf("lower bound         %.1f blocks\n", lb)
	fmt.Printf("normalized comm     %.4f\n", float64(m.Blocks)/lb)
	fmt.Printf("master requests     %d\n", m.Requests)
	fmt.Printf("makespan            %.4f time units\n", m.Makespan)
	fmt.Printf("load imbalance      %.4f (max relative deviation)\n", m.Imbalance(speeds.NewFixed(init)))
	if m.Phase1Tasks >= 0 {
		fmt.Printf("phase-1 tasks       %d (%.2f%%)\n", m.Phase1Tasks,
			100*float64(m.Phase1Tasks)/float64(sched.Total()))
	}
	if rec != nil {
		fmt.Println()
		fmt.Print(rec.Trace().Gantt(72))
	}
}
