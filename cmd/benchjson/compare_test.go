package main

import (
	"strings"
	"testing"
)

func row(name string, ns float64, allocs int64, par int, topo string) benchResult {
	return benchResult{Name: name, NsPerOp: ns, AllocsPerOp: allocs, Parallelism: par, Topology: topo}
}

func TestCompareWithinBudget(t *testing.T) {
	base := &report{Benchmarks: []benchResult{row("A", 1000, 0, 1, "single")}}
	cur := &report{Benchmarks: []benchResult{row("A", 1200, 0, 1, "single")}}
	v, w := compareReports(base, cur, 25)
	if len(v) != 0 || len(w) != 0 {
		t.Fatalf("20%% regression inside a 25%% budget flagged: %v %v", v, w)
	}
}

func TestCompareRegression(t *testing.T) {
	base := &report{Benchmarks: []benchResult{row("A", 1000, 0, 1, "single")}}
	cur := &report{Benchmarks: []benchResult{row("A", 1300, 0, 1, "single")}}
	v, _ := compareReports(base, cur, 25)
	if len(v) != 1 || !strings.Contains(v[0], "30.0%") {
		t.Fatalf("30%% regression not flagged: %v", v)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := &report{Benchmarks: []benchResult{row("A", 1000, 0, 1, "single")}}
	cur := &report{Benchmarks: []benchResult{row("A", 900, 3, 1, "single")}}
	v, _ := compareReports(base, cur, 25)
	if len(v) != 1 || !strings.Contains(v[0], "allocation-free") {
		t.Fatalf("allocs on an allocation-free row not flagged: %v", v)
	}
}

func TestCompareSkipsMismatchedRegimes(t *testing.T) {
	base := &report{Benchmarks: []benchResult{
		row("A", 1000, 0, 8, "single"),
		row("B", 1000, 0, 1, "single"),
		row("C", 1000, 0, 1, "federated-4"),
	}}
	cur := &report{Benchmarks: []benchResult{
		row("A", 9000, 0, 1, "single"),      // parallelism moved: different machine
		row("B", 9000, 0, 1, "federated-4"), // topology moved: different layout
		row("D", 9000, 0, 1, "single"),      // new row: no baseline
	}}
	v, w := compareReports(base, cur, 25)
	if len(v) != 0 {
		t.Fatalf("mismatched regimes compared anyway: %v", v)
	}
	if len(w) != 3 {
		t.Fatalf("want 3 skip warnings, got %v", w)
	}
}
