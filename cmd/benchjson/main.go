// Command benchjson records the repository's performance baseline as
// machine-readable JSON: it runs the micro-benchmarks of internal/perf
// through testing.Benchmark and wall-clock-times the full quick figure
// suite serially (Workers=1) and in parallel (Workers=GOMAXPROCS),
// then writes BENCH_sim.json and BENCH_service.json. Committing those
// files gives every future performance PR a recorded before/after
// trajectory.
//
// Usage:
//
//	benchjson [-out dir] [-benchtime 1s] [-skip-suite] [-only sim|service]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"hetsched/internal/experiments"
	"hetsched/internal/perf"
)

// benchResult is one micro-benchmark measurement. Parallelism is the
// number of goroutines the body drove concurrently (1 for serial
// loops, GOMAXPROCS for RunParallel bodies): recorded per row so a
// baseline taken on a single-core container is distinguishable from a
// multi-core CI artifact — the contended rows measure different
// regimes under the two.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Parallelism int     `json:"parallelism"`
}

// suiteResult is the wall-clock timing of the full quick figure suite
// under the serial and parallel replication engines.
type suiteResult struct {
	Figures         int     `json:"figures"`
	Seed            uint64  `json:"seed"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelWorkers int     `json:"parallel_workers"`
	Speedup         float64 `json:"speedup"`
}

// report is the schema of a BENCH_*.json file. NumCPU and GOMAXPROCS
// are recorded next to every measurement because they decide how the
// parallel-suite numbers read: on a single-core container the
// serial-vs-parallel speedup is ~1.0× by construction, and only the
// recorded core count makes that interpretable.
type report struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
	Suite      *suiteResult  `json:"quick_suite,omitempty"`
}

func newReport() *report {
	return &report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

func runBenchmarks(bs []perf.Benchmark) []benchResult {
	results := make([]benchResult, 0, len(bs))
	for _, bench := range bs {
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", bench.Name)
		r := testing.Benchmark(bench.F)
		results = append(results, benchResult{
			Name:        bench.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Parallelism: bench.Parallelism(),
		})
	}
	return results
}

// timeSuite runs every registry figure once in quick mode with the
// given worker count and returns the total wall-clock time.
func timeSuite(seed uint64, workers int) time.Duration {
	cfg := experiments.Config{Seed: seed, Quick: true, Workers: workers}
	start := time.Now()
	for _, id := range experiments.IDs() {
		experiments.Registry[id].Run(cfg)
	}
	return time.Since(start)
}

func writeReport(dir, name string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func main() {
	outDir := flag.String("out", ".", "directory for BENCH_*.json output")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring time (test.benchtime)")
	skipSuite := flag.Bool("skip-suite", false, "skip the quick-suite wall-clock timing")
	seed := flag.Uint64("seed", 1, "root seed for the quick-suite timing")
	only := flag.String("only", "", "refresh a single report: sim | service (default both)")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -benchtime: %v\n", err)
		os.Exit(2)
	}
	if *only != "" && *only != "sim" && *only != "service" {
		fmt.Fprintf(os.Stderr, "benchjson: bad -only %q (want sim or service)\n", *only)
		os.Exit(2)
	}

	if *only == "" || *only == "sim" {
		simRep := newReport()
		simRep.Benchmarks = runBenchmarks(perf.SimBenchmarks)
		if !*skipSuite {
			fmt.Fprintln(os.Stderr, "benchjson: timing quick figure suite (serial)...")
			serial := timeSuite(*seed, 1)
			workers := runtime.GOMAXPROCS(0)
			fmt.Fprintf(os.Stderr, "benchjson: timing quick figure suite (%d workers)...\n", workers)
			parallel := timeSuite(*seed, 0)
			simRep.Suite = &suiteResult{
				Figures:         len(experiments.IDs()),
				Seed:            *seed,
				SerialSeconds:   serial.Seconds(),
				ParallelSeconds: parallel.Seconds(),
				ParallelWorkers: workers,
				Speedup:         serial.Seconds() / parallel.Seconds(),
			}
		}
		if err := writeReport(*outDir, "BENCH_sim.json", simRep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	if *only == "" || *only == "service" {
		svcRep := newReport()
		svcRep.Benchmarks = runBenchmarks(perf.ServiceBenchmarks)
		if err := writeReport(*outDir, "BENCH_service.json", svcRep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}
