// Command benchjson records the repository's performance baseline as
// machine-readable JSON: it runs the micro-benchmarks of internal/perf
// through testing.Benchmark and wall-clock-times the full quick figure
// suite serially (Workers=1) and in parallel (Workers=GOMAXPROCS),
// then writes BENCH_sim.json and BENCH_service.json. Committing those
// files gives every future performance PR a recorded before/after
// trajectory.
//
// Usage:
//
//	benchjson [-out dir] [-benchtime 1s] [-short] [-skip-suite] [-only sim|service|ci]
//	benchjson -compare new.json -against baseline.json [-max-regress 25]
//
// -only ci runs just the poll-hot-path subset (the contended
// single-host row, the journaled poll row and the federated router
// row) and writes BENCH_ci.json — the artifact the CI workflow
// measures on every push and checks against the committed baseline
// with -compare, which exits nonzero on a ns/op regression beyond the
// budget or on any allocation appearing on an allocation-free row.
//
// -short propagates testing's -short to the bodies: scale-guarded
// rows (ClusterHost1M, a million-worker drain per op) skip themselves
// and are dropped from the report instead of recording a NaN.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"hetsched/internal/experiments"
	"hetsched/internal/perf"
)

// benchResult is one micro-benchmark measurement. Parallelism is the
// number of goroutines the body drove concurrently (1 for serial
// loops, GOMAXPROCS for RunParallel bodies): recorded per row so a
// baseline taken on a single-core container is distinguishable from a
// multi-core CI artifact — the contended rows measure different
// regimes under the two.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Parallelism int     `json:"parallelism"`
	// Hosts and Topology record the federated layout the row drove
	// (0/"single" for the classic rows, N/"federated-N" behind a
	// consistent-hash router) so baselines from different topologies
	// are never compared against each other.
	Hosts    int    `json:"hosts,omitempty"`
	Topology string `json:"topology"`
}

// suiteResult is the wall-clock timing of the full quick figure suite
// under the serial and parallel replication engines.
type suiteResult struct {
	Figures         int     `json:"figures"`
	Seed            uint64  `json:"seed"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	ParallelWorkers int     `json:"parallel_workers"`
	Speedup         float64 `json:"speedup"`
}

// report is the schema of a BENCH_*.json file. NumCPU and GOMAXPROCS
// are recorded next to every measurement because they decide how the
// parallel-suite numbers read: on a single-core container the
// serial-vs-parallel speedup is ~1.0× by construction, and only the
// recorded core count makes that interpretable.
type report struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
	Suite      *suiteResult  `json:"quick_suite,omitempty"`
}

func newReport() *report {
	return &report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

func runBenchmarks(bs []perf.Benchmark) []benchResult {
	results := make([]benchResult, 0, len(bs))
	for _, bench := range bs {
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", bench.Name)
		r := testing.Benchmark(bench.F)
		if r.N == 0 {
			// The body skipped itself (scale-guarded rows under -short);
			// a zero-iteration row would record NaN ns/op, so drop it
			// loudly instead.
			fmt.Fprintf(os.Stderr, "benchjson: %s skipped, no row recorded\n", bench.Name)
			continue
		}
		results = append(results, benchResult{
			Name:        bench.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Parallelism: bench.Parallelism(),
			Hosts:       bench.Hosts,
			Topology:    bench.Topology(),
		})
	}
	return results
}

// timeSuite runs every registry figure once in quick mode with the
// given worker count and returns the total wall-clock time.
func timeSuite(seed uint64, workers int) time.Duration {
	cfg := experiments.Config{Seed: seed, Quick: true, Workers: workers}
	start := time.Now()
	for _, id := range experiments.IDs() {
		experiments.Registry[id].Run(cfg)
	}
	return time.Since(start)
}

func writeReport(dir, name string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareReports checks current against baseline row by row and
// returns the violations: a ns/op regression beyond maxRegress
// percent, or an allocation count that went from zero to nonzero (the
// poll path's allocation-free guarantee has no tolerance band). Rows
// are matched by name; a row whose recorded parallelism or topology
// differs between the two files measured a different regime and is
// skipped with a warning — comparing a 1-core baseline against an
// 8-core run (or a single-host row against a federated one) would
// produce noise, not signal.
func compareReports(baseline, current *report, maxRegress float64) (violations, warnings []string) {
	base := make(map[string]benchResult, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	for _, cur := range current.Benchmarks {
		b, ok := base[cur.Name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: no baseline row, skipping", cur.Name))
			continue
		}
		if b.Parallelism != cur.Parallelism {
			warnings = append(warnings, fmt.Sprintf("%s: baseline parallelism %d vs current %d, skipping",
				cur.Name, b.Parallelism, cur.Parallelism))
			continue
		}
		if b.Topology != cur.Topology {
			warnings = append(warnings, fmt.Sprintf("%s: baseline topology %q vs current %q, skipping",
				cur.Name, b.Topology, cur.Topology))
			continue
		}
		if b.NsPerOp > 0 {
			pct := (cur.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			if pct > maxRegress {
				violations = append(violations, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%.1f%% > %.1f%% budget)",
					cur.Name, cur.NsPerOp, b.NsPerOp, pct, maxRegress))
			}
		}
		if b.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op vs allocation-free baseline",
				cur.Name, cur.AllocsPerOp))
		}
	}
	return violations, warnings
}

func readReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runCompare is the -compare entry point; it exits the process.
func runCompare(currentPath, baselinePath string, maxRegress float64) {
	cur, err := readReport(currentPath)
	if err == nil {
		var base *report
		base, err = readReport(baselinePath)
		if err == nil {
			violations, warnings := compareReports(base, cur, maxRegress)
			for _, w := range warnings {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s\n", w)
			}
			if len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Printf("benchjson: %s within %.0f%% of %s\n", currentPath, maxRegress, baselinePath)
			os.Exit(0)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(2)
}

func main() {
	outDir := flag.String("out", ".", "directory for BENCH_*.json output")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring time (test.benchtime)")
	skipSuite := flag.Bool("skip-suite", false, "skip the quick-suite wall-clock timing")
	seed := flag.Uint64("seed", 1, "root seed for the quick-suite timing")
	only := flag.String("only", "", "refresh a single report: sim | service | ci (default sim and service)")
	short := flag.Bool("short", false, "propagate testing -short to the benchmark bodies: scale-guarded rows (ClusterHost1M) skip themselves and are dropped from the report")
	compare := flag.String("compare", "", "compare this BENCH_*.json against -against instead of benchmarking")
	against := flag.String("against", "", "baseline BENCH_*.json for -compare")
	maxRegress := flag.Float64("max-regress", 25, "ns/op regression budget for -compare, in percent")
	testing.Init()
	flag.Parse()
	if *compare != "" {
		if *against == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs -against <baseline.json>")
			os.Exit(2)
		}
		runCompare(*compare, *against, *maxRegress)
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -benchtime: %v\n", err)
		os.Exit(2)
	}
	if *short {
		if err := flag.Set("test.short", "true"); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -short: %v\n", err)
			os.Exit(2)
		}
	}
	switch *only {
	case "", "sim", "service":
	case "ci":
		ciRep := newReport()
		ciRep.Benchmarks = runBenchmarks(perf.CIBenchmarks)
		if err := writeReport(*outDir, "BENCH_ci.json", ciRep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "benchjson: bad -only %q (want sim, service, or ci)\n", *only)
		os.Exit(2)
	}

	if *only == "" || *only == "sim" {
		simRep := newReport()
		simRep.Benchmarks = runBenchmarks(perf.SimBenchmarks)
		if !*skipSuite {
			fmt.Fprintln(os.Stderr, "benchjson: timing quick figure suite (serial)...")
			serial := timeSuite(*seed, 1)
			workers := runtime.GOMAXPROCS(0)
			fmt.Fprintf(os.Stderr, "benchjson: timing quick figure suite (%d workers)...\n", workers)
			parallel := timeSuite(*seed, 0)
			simRep.Suite = &suiteResult{
				Figures:         len(experiments.IDs()),
				Seed:            *seed,
				SerialSeconds:   serial.Seconds(),
				ParallelSeconds: parallel.Seconds(),
				ParallelWorkers: workers,
				Speedup:         serial.Seconds() / parallel.Seconds(),
			}
		}
		if err := writeReport(*outDir, "BENCH_sim.json", simRep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	if *only == "" || *only == "service" {
		svcRep := newReport()
		svcRep.Benchmarks = runBenchmarks(perf.ServiceBenchmarks)
		if err := writeReport(*outDir, "BENCH_service.json", svcRep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}
