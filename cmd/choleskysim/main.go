// Command choleskysim simulates the tiled-Cholesky extension (the
// paper's §5 future work) on a heterogeneous platform and prints
// communication and efficiency metrics for a ready-task policy:
//
//	choleskysim -n 24 -p 16 -policy locality -seed 7
//
// With -verify it additionally replays the schedule on a real SPD
// matrix and checks A = L·Lᵀ.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsched/internal/cholesky"
	"hetsched/internal/experiments"
	"hetsched/internal/linalg"
	"hetsched/internal/speeds"
)

func main() {
	opts := experiments.RegisterSimFlags(flag.CommandLine, 24, 16, "tiles per matrix dimension")
	policy := flag.String("policy", "locality", "random | locality | critpath")
	verify := flag.Bool("verify", false, "replay the schedule on a real SPD matrix (tile size 4)")
	flag.Parse()

	var pol cholesky.Policy
	switch *policy {
	case "random":
		pol = cholesky.RandomReady
	case "locality":
		pol = cholesky.LocalityReady
	case "critpath":
		pol = cholesky.CriticalPathReady
	default:
		fmt.Fprintf(os.Stderr, "choleskysim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	root, init, _ := opts.Platform()
	m := cholesky.Simulate(opts.N, pol, speeds.NewFixed(init), root.Split())

	fmt.Printf("policy              %s\n", pol)
	fmt.Printf("tasks               %d\n", cholesky.TaskCount(opts.N))
	fmt.Printf("communication       %d tile transfers\n", m.Blocks)
	fmt.Printf("makespan            %.4f time units\n", m.Makespan)
	fmt.Printf("work bound          %.4f (efficiency %.3f)\n", m.WorkBound, m.Efficiency())
	fmt.Printf("critical-path bound %.4f\n", m.CPBound)
	fmt.Printf("total wait time     %.4f worker-time units\n", m.WaitTime)

	if *verify {
		const l = 4
		a := linalg.NewBlockedMatrix(opts.N, l)
		linalg.RandomSPD(a, root.Split())
		work := linalg.NewBlockedMatrix(opts.N, l)
		for i, blk := range a.Blocks {
			copy(work.Blocks[i].Data, blk.Data)
		}
		if err := cholesky.Replay(m.Schedule, work); err != nil {
			fmt.Fprintf(os.Stderr, "choleskysim: replay: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("numeric residual    %.3e (|A − L·Lᵀ|)\n", linalg.CholeskyResidual(a, work))
	}
}
