// Command schedd serves the paper's demand-driven schedulers over
// HTTP: clients create runs, workers poll for task batches and report
// completions, observers read live statistics and traces.
//
//	schedd -addr :8080 -shards 16 -batch 4 -ttl 15m -lease 30s
//
// Create a run and pull one assignment:
//
//	curl -s -X POST localhost:8080/v1/runs \
//	    -d '{"kernel":"outer","strategy":"2phases","n":100,"p":8,"seed":7}'
//	curl -s -X POST localhost:8080/v1/runs/<id>/next -d '{"worker":0}'
//	curl -s localhost:8080/v1/runs/<id>/stats
//
// The next endpoint also speaks a compact binary framing for
// protocol-bytes-bound fleets: a worker sends its poll as
// Content-Type: application/x-schedd-frame and/or asks for framed
// responses via Accept (negotiated per request; everything else stays
// JSON).
//
// Watch a run live (SSE event stream, Prometheus metrics, dashboard):
//
//	curl -N localhost:8080/v1/runs/<id>/events
//	curl -s 'localhost:8080/v1/metrics?format=prometheus'
//	open http://localhost:8080/v1/ui
//
// A journaled master survives crashes: -journal-dir frames every run
// mutation into a write-ahead log before its response is released,
// -snapshot-every checkpoints the runs and prunes the log, and a
// restart replays snapshot plus tail back to the exact pre-crash state
// (serving 503 + Retry-After until the replay finishes):
//
//	schedd -addr :8080 -journal-dir /var/lib/schedd/journal -snapshot-every 5m
//
// Router mode fronts a federated fleet of schedd hosts: runs are
// placed on peers by a consistent hash of the run id, every per-run
// request is forwarded to the owner with zero body inspection (JSON
// and binary frames pass through byte-identical, SSE streams are
// relayed with Last-Event-ID resume), and /v1/metrics aggregates the
// whole fleet:
//
//	schedd -addr :8081 &
//	schedd -addr :8082 &
//	schedd -router -addr :8080 -peers http://localhost:8081,http://localhost:8082
//
// With -peer-journals the router can also move live runs between
// journaled peers (snapshot-ship-replay): POST /v1/ring/epoch bumps
// the placement epoch and migrates every run whose owner moved, and
// POST /v1/ring/recover scavenges a crashed peer's runs out of its
// journal directory onto the new ring owners — zero runs lost:
//
//	schedd -addr :8081 -journal-dir /var/lib/schedd/j1 &
//	schedd -addr :8082 -journal-dir /var/lib/schedd/j2 &
//	schedd -router -addr :8080 \
//	    -peers http://localhost:8081,http://localhost:8082 \
//	    -peer-journals /var/lib/schedd/j1,/var/lib/schedd/j2 -ring-epoch 1
//	curl -s -X POST localhost:8080/v1/ring/epoch -d '{"epoch":2}'
//	curl -s -X POST localhost:8080/v1/ring/recover -d '{"host":"http://localhost:8082","epoch":3}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetsched/internal/durable"
	"hetsched/internal/federation"
	"hetsched/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 8, "run-registry shard count")
	batch := flag.Int("batch", 1, "default tasks per worker request (the paper's batching knob)")
	ttl := flag.Duration("ttl", 15*time.Minute, "expire runs idle for longer than this (0 = never)")
	gc := flag.Duration("gc", time.Minute, "garbage-collection interval (0 = disabled)")
	lease := flag.Duration("lease", 0, "default assignment lease: reclaim tasks a worker holds longer than this (0 = never; runs can override via lease_seconds)")
	eventsBuffer := flag.Int("events-buffer", 0, "per-subscriber event buffer and per-run retention ring for /v1/events streams (0 = default 1024); a subscriber that reads slower than events arrive drops the overflow")
	journalDir := flag.String("journal-dir", "", "durable write-ahead journal directory: every run mutation is journaled there before its response is released, and startup replays snapshot+tail back to the exact pre-crash state (empty = volatile, no journal)")
	snapshotEvery := flag.Duration("snapshot-every", 5*time.Minute, "periodic checkpoint interval with -journal-dir: snapshot every run and prune the journal behind the snapshots, bounding recovery time (0 = never; recovery then replays the whole log)")
	router := flag.Bool("router", false, "serve as a federation router over -peers instead of hosting runs")
	peers := flag.String("peers", "", "comma-separated peer base URLs for -router mode (e.g. http://h1:8080,http://h2:8080)")
	ringEpoch := flag.Uint64("ring-epoch", 0, "placement-ring epoch: bump to reshuffle where new runs land (router mode)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per peer on the placement ring (0 = default 64; router mode)")
	peerJournals := flag.String("peer-journals", "", "comma-separated journal directories aligned one-to-one with -peers (router mode): lets the router live-migrate runs on an epoch bump (POST /v1/ring/epoch) and scavenge a crashed peer's runs from its journal (POST /v1/ring/recover); empty entries mark peers without a reachable journal")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler http.Handler
	if *router {
		urls := strings.Split(*peers, ",")
		targets := make([]federation.Target, 0, len(urls))
		for _, u := range urls {
			if u = strings.TrimSpace(u); u != "" {
				targets = append(targets, federation.Target{URL: strings.TrimRight(u, "/")})
			}
		}
		if *peerJournals != "" {
			dirs := strings.Split(*peerJournals, ",")
			if len(dirs) != len(targets) {
				log.Fatalf("schedd: -peer-journals names %d directories for %d peers", len(dirs), len(targets))
			}
			for i, d := range dirs {
				targets[i].JournalDir = strings.TrimSpace(d)
			}
		}
		rt, err := federation.NewRouter(targets, federation.Options{
			Vnodes: *vnodes,
			Epoch:  *ringEpoch,
		})
		if err != nil {
			log.Fatalf("schedd: -router: %v", err)
		}
		handler = rt
		log.Printf("schedd: routing over %d peers (epoch=%d vnodes=%d)",
			len(targets), rt.Ring().Epoch(), rt.Ring().Vnodes())
	} else {
		if *peers != "" {
			log.Fatalf("schedd: -peers needs -router")
		}
		opts := service.Options{Shards: *shards, DefaultBatch: *batch, TTL: *ttl, GCInterval: *gc,
			DefaultLease: *lease, EventsBuffer: *eventsBuffer}
		if *ttl == 0 {
			opts.TTL = -1
		}
		if *gc == 0 {
			opts.GCInterval = -1
		}
		if *journalDir != "" {
			jr, err := durable.Open(*journalDir)
			if err != nil {
				log.Fatalf("schedd: -journal-dir: %v", err)
			}
			// LIFO with svc.Close() below: the server flushes and stops
			// first, then the journal handle closes.
			defer jr.Close()
			opts.Journal = jr
			opts.SnapshotEvery = *snapshotEvery
			// Serve 503 + Retry-After while the replay runs instead of
			// delaying the listener: a router in front forwards the
			// recovering answer verbatim and pollers retry into the
			// recovered state.
			opts.AsyncRecover = true
			log.Printf("schedd: journaling to %s (snapshot every %v), replaying journal in background",
				*journalDir, *snapshotEvery)
		}
		svc := service.New(opts)
		defer svc.Close()
		handler = svc
		log.Printf("schedd: listening on %s (shards=%d batch=%d ttl=%v)", *addr, *shards, *batch, *ttl)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	if *router {
		log.Printf("schedd: router listening on %s", *addr)
	}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("schedd: %v", err)
	}
	log.Printf("schedd: shut down")
}
