// Command qrsim simulates the tiled-QR extension — the third
// dependency-aware kernel, whose coupled TSQRT/TSMQR tasks write two
// tiles each — on a heterogeneous platform and prints communication
// and efficiency metrics for a ready-task policy:
//
//	qrsim -n 16 -p 16 -policy locality -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsched/internal/experiments"
	"hetsched/internal/qr"
	"hetsched/internal/speeds"
)

func main() {
	opts := experiments.RegisterSimFlags(flag.CommandLine, 16, 16, "tiles per matrix dimension")
	policy := flag.String("policy", "locality", "random | locality | critpath")
	flag.Parse()

	var pol qr.Policy
	switch *policy {
	case "random":
		pol = qr.RandomReady
	case "locality":
		pol = qr.LocalityReady
	case "critpath":
		pol = qr.CriticalPathReady
	default:
		fmt.Fprintf(os.Stderr, "qrsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	root, init, _ := opts.Platform()
	m := qr.Simulate(opts.N, pol, speeds.NewFixed(init), root.Split())

	fmt.Printf("policy              %s\n", pol)
	fmt.Printf("tasks               %d\n", qr.TaskCount(opts.N))
	fmt.Printf("communication       %d tile transfers\n", m.Blocks)
	fmt.Printf("makespan            %.4f time units\n", m.Makespan)
	fmt.Printf("work bound          %.4f (efficiency %.3f)\n", m.WorkBound, m.Efficiency())
	fmt.Printf("critical-path bound %.4f\n", m.CPBound)
	fmt.Printf("total wait time     %.4f worker-time units\n", m.WaitTime)
}
