// Command hpdc14 regenerates the figures of Beaumont & Marchal,
// "Analysis of Dynamic Scheduling Strategies for Matrix Multiplication
// on Heterogeneous Platforms" (HPDC 2014).
//
// Usage:
//
//	hpdc14 [flags] <experiment>...
//	hpdc14 [flags] all
//	hpdc14 list
//
// Each experiment prints an aligned table and an ASCII chart, and
// writes a CSV file into -out (default ./results).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hetsched/internal/experiments"
)

func main() {
	cfg := experiments.RegisterConfigFlags(flag.CommandLine)
	outDir := flag.String("out", "results", "directory for CSV output (empty = no CSV)")
	ascii := flag.Bool("ascii", true, "print ASCII charts")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-11s %s\n", id, experiments.Registry[id].Description)
		}
		return
	}

	var ids []string
	if args[0] == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range args {
			if _, known := experiments.Registry[id]; !known {
				fmt.Fprintf(os.Stderr, "hpdc14: unknown experiment %q (try 'hpdc14 list')\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		exp := experiments.Registry[id]
		start := time.Now()
		res := exp.Run(*cfg)
		elapsed := time.Since(start)

		fmt.Println(res.Table())
		if *ascii {
			fmt.Println(res.ASCII(72, 18))
		}
		fmt.Printf("(%s computed in %v)\n\n", id, elapsed.Round(time.Millisecond))

		if *outDir != "" {
			path, err := experiments.WriteResultCSV(*outDir, id, res)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpdc14: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `hpdc14 regenerates the paper's figures.

usage:
  hpdc14 [flags] <experiment>...   run selected experiments
  hpdc14 [flags] all               run every experiment
  hpdc14 list                      list experiments

flags:
`)
	flag.PrintDefaults()
}
