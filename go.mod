module hetsched

go 1.24
